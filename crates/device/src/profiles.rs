//! The eleven flash devices of Table 2, as simulation profiles.
//!
//! Each profile couples the paper's catalogue metadata (brand, model,
//! type, marketed capacity, 2008 price) with a *mechanistic* simulation
//! configuration: chip geometry and timings, channel count, FTL family
//! and its parameters, controller model, and (where the paper's Table 3
//! reports behaviour our mechanisms cannot derive from public
//! information) documented black-box calibration knobs.
//!
//! Simulated capacities are scaled down (SSDs 448 MiB, USB/SD 96–192
//! MiB) so the full benchmark — including the random-state
//! enforcement of §4.1, which writes the *whole* device — runs in
//! seconds of host CPU time. The scaling preserves every behaviour the
//! paper measures because the relevant mechanisms (log pools,
//! allocation units, watermarks) are sized in absolute bytes, exactly
//! as on the real devices.
//!
//! The seven devices marked [`DeviceProfile::representative`] are the
//! arrow-marked rows of Table 2 whose results the paper presents.

use crate::sim_device::{ControllerConfig, SimDevice, StrideQuirk};
use serde::{Deserialize, Serialize};
use std::path::Path;
use uflip_ftl::{
    BlockMapConfig, BlockMapFtl, FittedFtl, FittedFtlConfig, HybridLogConfig, HybridLogFtl,
    PageMapConfig, PageMapFtl, ReplacementPolicy, WriteCacheConfig,
};
use uflip_nand::{ChipConfig, NandArrayConfig, NandGeometry, NandTiming, ProgramOrder, WearState};

/// Device form factor (Table 2 "Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceKind {
    /// 2.5" SATA solid-state drive.
    Ssd,
    /// USB 2.0 flash drive.
    UsbDrive,
    /// IDE flash module (disk-on-module).
    IdeModule,
    /// SD card.
    SdCard,
}

impl DeviceKind {
    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            DeviceKind::Ssd => "SSD",
            DeviceKind::UsbDrive => "USB drive",
            DeviceKind::IdeModule => "IDE module",
            DeviceKind::SdCard => "SD card",
        }
    }
}

/// Which FTL family (and parameters) a profile simulates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FtlSpec {
    /// High-end SSD: page mapping, pre-erased pool, async reclamation.
    PageMap(PageMapConfig),
    /// Mid-range: hybrid log-block.
    HybridLog(HybridLogConfig),
    /// Low-end: block mapping with allocation units.
    BlockMap(BlockMapConfig),
    /// Behavioural model fitted from black-box calibration runs
    /// (`uflip_core::calibrate`): measured latency curves instead of a
    /// mechanistic NAND/FTL stack.
    Fitted(FittedFtlConfig),
}

/// A complete device profile: catalogue row + simulation config.
///
/// Profiles round-trip through JSON ([`DeviceProfile::save_json`] /
/// [`DeviceProfile::load_json`]), which is how fitted profiles produced
/// by the `calibrate` binary are fed back into every harness binary via
/// the `profile:PATH` device spec.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Short identifier used in reports (e.g. `memoright`).
    pub id: String,
    /// Brand (Table 2), or a provenance note for fitted profiles.
    pub brand: String,
    /// Model (Table 2).
    pub model: String,
    /// Form factor (Table 2).
    pub kind: DeviceKind,
    /// Marketed capacity (Table 2) — the *real* device's size.
    pub marketed: String,
    /// 2008 street price in USD (Table 2); 0 for fitted profiles.
    pub price_usd: u32,
    /// Included in the paper's seven presented devices (Table 2 arrows).
    pub representative: bool,
    /// FTL family and parameters.
    pub ftl: FtlSpec,
    /// Controller / interconnect model.
    pub controller: ControllerConfig,
    /// Optional strided-write calibration quirk (Table 3 "Large Incr").
    pub stride_quirk: Option<StrideQuirk>,
}

impl DeviceProfile {
    /// Simulated (scaled) capacity in bytes.
    pub fn sim_capacity_bytes(&self) -> u64 {
        match &self.ftl {
            FtlSpec::PageMap(c) => c.capacity_bytes,
            FtlSpec::HybridLog(c) => c.capacity_bytes,
            FtlSpec::BlockMap(c) => c.capacity_bytes,
            FtlSpec::Fitted(c) => c.capacity_bytes,
        }
    }

    /// Build the simulated device. Construction is deterministic per
    /// seed: the seed feeds the device's service-time jitter stream
    /// (see [`SimDevice::with_seed`]), so equal seeds give bit-identical
    /// traces and different seeds give diverging ones.
    pub fn build_sim(&self, seed: u64) -> Box<SimDevice> {
        // JSON-loaded profiles were validated at parse time and the
        // built-in catalog is construction-tested, so these cannot fire
        // there; `build_sim`'s 83 call sites keep their infallible
        // signature. (uflip-lint: the allows below each cover one arm.)
        let ftl: Box<dyn uflip_ftl::Ftl + Send> = match &self.ftl {
            FtlSpec::PageMap(c) => {
                // uflip-lint: allow(UF002, reason = "config validated by from_json/catalog tests")
                Box::new(PageMapFtl::new(*c).expect("profile PageMap config must be valid"))
            }
            FtlSpec::HybridLog(c) => {
                // uflip-lint: allow(UF002, reason = "config validated by from_json/catalog tests")
                Box::new(HybridLogFtl::new(*c).expect("profile HybridLog config must be valid"))
            }
            FtlSpec::BlockMap(c) => {
                // uflip-lint: allow(UF002, reason = "config validated by from_json/catalog tests")
                Box::new(BlockMapFtl::new(*c).expect("profile BlockMap config must be valid"))
            }
            FtlSpec::Fitted(c) => {
                // uflip-lint: allow(UF002, reason = "config validated by from_json/catalog tests")
                Box::new(FittedFtl::new(c.clone()).expect("profile Fitted config must be valid"))
            }
        };
        Box::new(
            SimDevice::new(self.id.clone(), ftl, self.controller, self.stride_quirk)
                .with_seed(seed),
        )
    }

    /// FTL family name for reports.
    pub fn ftl_family(&self) -> &'static str {
        match self.ftl {
            FtlSpec::PageMap(_) => "page-map",
            FtlSpec::HybridLog(_) => "hybrid-log",
            FtlSpec::BlockMap(_) => "block-map",
            FtlSpec::Fitted(_) => "fitted",
        }
    }

    /// Wrap a fitted configuration in a profile. The controller is the
    /// identity ([`ControllerConfig::passthrough`]) because the fitted
    /// latency curves already include controller and interconnect
    /// costs.
    pub fn fitted(id: impl Into<String>, source: impl Into<String>, c: FittedFtlConfig) -> Self {
        DeviceProfile {
            id: id.into(),
            brand: source.into(),
            model: "calibrated".into(),
            kind: DeviceKind::Ssd,
            marketed: String::new(),
            price_usd: 0,
            representative: false,
            ftl: FtlSpec::Fitted(c),
            controller: ControllerConfig::passthrough(),
            stride_quirk: None,
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        // uflip-lint: allow(UF002, reason = "serialization of a plain data struct with no maps or non-UTF8 keys cannot fail")
        serde_json::to_string_pretty(self).expect("profiles are always serializable")
    }

    /// Check that the profile's FTL configuration can actually be
    /// constructed, so `build_sim` on a loaded profile cannot panic on
    /// untrusted JSON input.
    pub fn validate(&self) -> std::result::Result<(), String> {
        let check = |r: std::result::Result<(), uflip_ftl::FtlError>| {
            r.map_err(|e| format!("invalid profile `{}`: {e}", self.id))
        };
        match &self.ftl {
            FtlSpec::PageMap(c) => check(PageMapFtl::new(*c).map(drop)),
            FtlSpec::HybridLog(c) => check(HybridLogFtl::new(*c).map(drop)),
            FtlSpec::BlockMap(c) => check(BlockMapFtl::new(*c).map(drop)),
            FtlSpec::Fitted(c) => check(FittedFtl::new(c.clone()).map(drop)),
        }
    }

    /// Parse a profile from JSON, rejecting configurations the FTL
    /// constructors would refuse.
    pub fn from_json(json: &str) -> std::result::Result<Self, String> {
        let profile: Self =
            serde_json::from_str(json).map_err(|e| format!("invalid device profile JSON: {e}"))?;
        profile.validate()?;
        Ok(profile)
    }

    /// Write the profile as JSON, creating parent directories.
    pub fn save_json(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// Load a profile from a JSON file (the `profile:PATH` device spec).
    pub fn load_json(path: &Path) -> std::result::Result<Self, String> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read profile {}: {e}", path.display()))?;
        Self::from_json(&json)
    }
}

/// SLC chip with custom program time and a chosen chip size, used to
/// calibrate per-device throughput.
fn slc_chip(blocks_per_plane: u32, program_us: u64, read_us: u64) -> ChipConfig {
    ChipConfig {
        geometry: NandGeometry {
            page_data_bytes: 2048,
            page_oob_bytes: 64,
            pages_per_block: 64,
            blocks_per_plane,
            planes_per_chip: 2,
        },
        timing: NandTiming {
            read_page_ns: read_us * 1_000,
            program_page_ns: program_us * 1_000,
            erase_block_ns: 1_500_000,
            bus_ns_per_byte: 25,
            cmd_overhead_ns: 2_000,
        },
        // Merges may leave holes → Ascending, not Dense.
        program_order: ProgramOrder::Ascending,
        wear_limit: WearState::SLC_LIMIT,
        retain_data: false,
    }
}

/// MLC chip (4 KB pages, 512 KB blocks) with custom timings.
fn mlc_chip(blocks_per_plane: u32, program_us: u64, read_us: u64, erase_us: u64) -> ChipConfig {
    ChipConfig {
        geometry: NandGeometry {
            page_data_bytes: 4096,
            page_oob_bytes: 128,
            pages_per_block: 128,
            blocks_per_plane,
            planes_per_chip: 2,
        },
        timing: NandTiming {
            read_page_ns: read_us * 1_000,
            program_page_ns: program_us * 1_000,
            erase_block_ns: erase_us * 1_000,
            bus_ns_per_byte: 20,
            cmd_overhead_ns: 2_000,
        },
        program_order: ProgramOrder::Ascending,
        wear_limit: WearState::MLC_LIMIT,
        retain_data: false,
    }
}

const MB: u64 = 1024 * 1024;

/// Catalogue of all eleven Table 2 devices.
pub mod catalog {
    use super::*;

    /// Memoright MR25.2-032S — the paper's flagship high-end SSD
    /// (Figure 1 shows its internals: FPGA controller, 16 MB RAM,
    /// condenser). Hybrid FTL with a fully-associative log pool,
    /// 16 channels, incremental + asynchronous reclamation; Table 3:
    /// SR/RR/SW ≈ 0.3–0.4 ms, RW ≈ 5 ms, pause effect, 8 MB locality
    /// (=), 8 partitions (=), benign reverse and in-place, ×4
    /// large-Incr.
    pub fn memoright() -> DeviceProfile {
        let chips = 16;
        let chip = slc_chip(128, 220, 25); // 16 × 32 MB = 512 MB physical
        let array = NandArrayConfig {
            chip,
            chips,
            channels: 16,
        };
        DeviceProfile {
            id: "memoright".into(),
            brand: "Memoright".into(),
            model: "MR25.2-032S".into(),
            kind: DeviceKind::Ssd,
            marketed: "32 GB".into(),
            price_usd: 943,
            representative: true,
            ftl: FtlSpec::HybridLog(HybridLogConfig {
                array,
                capacity_bytes: 448 * MB, // 224 groups of 2 MB
                seq_slots: 8,             // partition limit 8 (=)
                rand_log_groups: 4,       // locality 4 × 2 MB = 8 MB
                write_cache: WriteCacheConfig::disabled(),
                descending_streams: true, // reverse "="
                rmw_granularity_bytes: 0,
                async_reclaim: true,
                bg_reserve_groups: 4, // idle fully cleans the pool:
                // start-up ≈ pool capacity ≈ 256 IOs after a long idle
                read_contention_factor: 4.0,
                bg_rate_during_reads: 1.0, // full-shadow GC: short lingering
                incremental_gc: true,      // frequent small merge spikes
                associative: true,         // FAST-style pool (high-end)
            }),
            controller: ControllerConfig {
                per_io_overhead_ns: 70_000,
                transfer_mb_s: 150,
                pipelined_transfer: true,
            },
            stride_quirk: None, // strided merges mechanistically cost
                                // several × RW (Table 3: ×4)
        }
    }

    /// GSKILL FS-25S2-32GB — high-end SSD, Memoright-class behaviour
    /// (not among the seven presented devices).
    pub fn gskill() -> DeviceProfile {
        let mut p = memoright();
        p.id = "gskill".into();
        p.brand = "GSKILL".into();
        p.model = "FS-25S2-32GB".into();
        p.price_usd = 694;
        p.representative = false;
        if let FtlSpec::HybridLog(ref mut c) = p.ftl {
            c.bg_reserve_groups = 2; // slightly longer start-up
            c.seq_slots = 4;
        }
        p
    }

    /// Mtron SATA7035-016 — high-end SSD with a longer start-up phase
    /// (Figure 3: ≈125 IOs, oscillation to ≈27 ms) and a pronounced
    /// read-lingering effect after random writes (Figure 5: ≈3000
    /// reads ≈ 2.5 s).
    pub fn mtron() -> DeviceProfile {
        let chips = 8;
        let chip = slc_chip(256, 190, 25); // 8 × 64 MB = 512 MB physical
        let array = NandArrayConfig {
            chip,
            chips,
            channels: 8,
        };
        DeviceProfile {
            id: "mtron".into(),
            brand: "Mtron".into(),
            model: "SATA7035-016".into(),
            kind: DeviceKind::Ssd,
            marketed: "16 GB".into(),
            price_usd: 407,
            representative: true,
            ftl: FtlSpec::HybridLog(HybridLogConfig {
                array,
                capacity_bytes: 448 * MB, // 448 groups of 1 MB
                seq_slots: 4,             // partition limit 4 (×1.5)
                rand_log_groups: 8,       // locality 8 × 1 MB = 8 MB
                write_cache: WriteCacheConfig::disabled(),
                descending_streams: true, // reverse "="
                rmw_granularity_bytes: 0,
                async_reclaim: true,
                bg_reserve_groups: 8,        // idle fully cleans the pool
                read_contention_factor: 8.0, // reads visibly slowed (Fig 5)
                bg_rate_during_reads: 0.9,   // ~3000 reads to drain
                incremental_gc: true,
                associative: true, // FAST-style pool (high-end)
            }),
            controller: ControllerConfig {
                per_io_overhead_ns: 90_000,
                transfer_mb_s: 130,
                pipelined_transfer: true,
            },
            stride_quirk: None, // mechanistic strided merges land ≈ ×2
        }
    }

    /// Samsung (quirk below) MCBQE32G5MPP — mid-range SSD: hybrid log-block FTL with
    /// a RAM write cache. Table 3: RW ≈ 18 ms, no pause effect, 16 MB
    /// locality (×1.5), 4 partitions (×2), reverse ×1.5 (descending
    /// streams tolerated), in-place ×0.6 (cache dedup), 16 KB mapping
    /// granularity (§5.2 alignment: 18 → 32 ms when misaligned). Also
    /// the §4.1 out-of-the-box anomaly device.
    pub fn samsung() -> DeviceProfile {
        let chips = 16;
        let chip = slc_chip(128, 230, 28); // 512 MB physical
        let array = NandArrayConfig {
            chip,
            chips,
            channels: 16,
        };
        DeviceProfile {
            id: "samsung".into(),
            brand: "Samsung".into(),
            model: "MCBQE32G5MPP".into(),
            kind: DeviceKind::Ssd,
            marketed: "32 GB".into(),
            price_usd: 517,
            representative: true,
            ftl: FtlSpec::HybridLog(HybridLogConfig {
                array,
                capacity_bytes: 448 * MB, // 224 groups of 2 MB; 32 spare
                seq_slots: 4,             // partition limit 4
                rand_log_groups: 8,       // locality area 8 × 2 MB = 16 MB
                write_cache: WriteCacheConfig {
                    capacity_pages: 64, // 128 KB dedup window
                    dedup: true,
                    destage_batch_pages: 16,
                },
                descending_streams: true,
                rmw_granularity_bytes: 16 * 1024, // §5.2 alignment result
                async_reclaim: false,             // Table 3: no pause effect
                bg_reserve_groups: 0,
                read_contention_factor: 1.0,
                bg_rate_during_reads: 0.0,
                incremental_gc: false,
                associative: false, // BAST: one merge per random write
            }),
            controller: ControllerConfig {
                per_io_overhead_ns: 80_000,
                transfer_mb_s: 110,
                pipelined_transfer: true,
            },
            stride_quirk: Some(StrideQuirk {
                // BAST serves strided and random writes identically, but
                // the real device degrades ×2 (Table 3) — a black-box
                // calibration (see DESIGN.md §4).
                min_stride: 512 * 1024,
                trigger_after: 3,
                factor: 2.0,
            }),
        }
    }

    /// Transcend TS4GDOM40V-S — IDE flash module: hybrid log-block
    /// without cache or descending tolerance. Table 3: SR/RR ≈ 1.2 ms,
    /// RW ≈ 18 ms, 4 MB locality (×2), 4 partitions (×2), reverse ×3,
    /// in-place ×2.
    pub fn transcend_module() -> DeviceProfile {
        let chips = 2;
        let chip = slc_chip(512, 240, 30); // 2 × 128 MB = 256 MB physical
        let array = NandArrayConfig {
            chip,
            chips,
            channels: 2,
        };
        DeviceProfile {
            id: "transcend-module".into(),
            brand: "Transcend".into(),
            model: "TS4GDOM40V-S".into(),
            kind: DeviceKind::IdeModule,
            marketed: "4 GB".into(),
            price_usd: 62,
            representative: true,
            ftl: FtlSpec::HybridLog(HybridLogConfig {
                array,
                capacity_bytes: 192 * MB, // 768 groups of 256 KB
                seq_slots: 4,
                rand_log_groups: 16, // locality 16 × 256 KB = 4 MB
                write_cache: WriteCacheConfig::disabled(),
                descending_streams: false,
                rmw_granularity_bytes: 0,
                async_reclaim: false, // Table 3: no pause effect
                bg_reserve_groups: 0,
                read_contention_factor: 1.0,
                bg_rate_during_reads: 0.0,
                incremental_gc: false, // whole-victim GC: big spikes
                associative: false,    // BAST: one merge per random write
            }),
            controller: ControllerConfig::ide(),
            stride_quirk: Some(StrideQuirk {
                // Same black-box ×2 as the Samsung (Table 3).
                min_stride: 512 * 1024,
                trigger_after: 3,
                factor: 2.0,
            }),
        }
    }

    /// Transcend TS32GSSD25S-M — low-end MLC SSD: block-mapped FTL with
    /// a *paged* replacement area. Table 3: RW ≈ 233 ms, 4 MB locality
    /// (=) — random writes inside the open AUs are plain appends —
    /// 4 partitions (×2), reverse/in-place ×2.
    pub fn transcend_mlc() -> DeviceProfile {
        let chips = 2;
        let chip = mlc_chip(128, 650, 100, 3_000); // 2 × 128 MB = 256 MB
        let array = NandArrayConfig {
            chip,
            chips,
            channels: 2,
        };
        DeviceProfile {
            id: "transcend-mlc".into(),
            brand: "Transcend".into(),
            model: "TS32GSSD25S-M".into(),
            kind: DeviceKind::Ssd,
            marketed: "32 GB".into(),
            price_usd: 199,
            representative: true,
            ftl: FtlSpec::BlockMap(BlockMapConfig {
                array,
                capacity_bytes: 192 * MB, // 192 AUs of 1 MB
                au_blocks_per_chip: 1,    // AU = 2 × 512 KB = 1 MB
                chunk_bytes: 32 * 1024,
                open_aus: 4,
                policy: ReplacementPolicy::Paged,
            }),
            controller: ControllerConfig {
                per_io_overhead_ns: 100_000,
                transfer_mb_s: 90,
                pipelined_transfer: false,
            },
            stride_quirk: None, // Table 3: large Incr ×1
        }
    }

    /// Transcend TS16GSSD25S-S — SLC sibling of the TS32 (not among the
    /// seven presented devices).
    pub fn transcend_slc() -> DeviceProfile {
        let chips = 2;
        let chip = slc_chip(512, 240, 28);
        let array = NandArrayConfig {
            chip,
            chips,
            channels: 2,
        };
        let mut p = transcend_mlc();
        p.id = "transcend-slc".into();
        p.model = "TS16GSSD25S-S".into();
        p.marketed = "16 GB".into();
        p.price_usd = 250;
        p.representative = false;
        p.ftl = FtlSpec::BlockMap(BlockMapConfig {
            array,
            capacity_bytes: 192 * MB,
            au_blocks_per_chip: 4, // AU = 8 × 128 KB = 1 MB
            chunk_bytes: 32 * 1024,
            open_aus: 4,
            policy: ReplacementPolicy::Paged,
        });
        p
    }

    /// Kingston DataTraveler HyperX — "fast" USB drive, still an order
    /// of magnitude slower than SSDs on random writes. Table 3:
    /// RW ≈ 270 ms, 16 MB locality (×20), 8 partitions (×20),
    /// reverse ×7, in-place ×6.
    pub fn kingston_dthx() -> DeviceProfile {
        let chips = 2;
        let chip = mlc_chip(128, 600, 60, 3_000); // 2 × 128 MB = 256 MB
        let array = NandArrayConfig {
            chip,
            chips,
            channels: 2,
        };
        DeviceProfile {
            id: "kingston-dthx".into(),
            brand: "Kingston".into(),
            model: "DT HyperX".into(),
            kind: DeviceKind::UsbDrive,
            marketed: "8 GB".into(),
            price_usd: 153,
            representative: true,
            ftl: FtlSpec::BlockMap(BlockMapConfig {
                array,
                capacity_bytes: 192 * MB, // 96 AUs of 2 MB
                au_blocks_per_chip: 2,    // AU = 4 × 512 KB = 2 MB
                chunk_bytes: 32 * 1024,
                open_aus: 8, // 8 open AUs → 16 MB "locality", 8 partitions
                policy: ReplacementPolicy::Ordered {
                    ooo_random_chunks: 6,  // ~×10 SW inside the open AUs
                    ooo_inplace_chunks: 3, // in-place ×6
                    ooo_reverse_chunks: 3, // reverse ×7
                },
            }),
            controller: ControllerConfig {
                per_io_overhead_ns: 120_000,
                transfer_mb_s: 34,
                pipelined_transfer: false,
            },
            stride_quirk: None,
        }
    }

    /// Corsair Flash Voyager GT — USB drive, DTHX-class (not among the
    /// seven presented devices).
    pub fn corsair() -> DeviceProfile {
        let mut p = kingston_dthx();
        p.id = "corsair".into();
        p.brand = "Corsair".into();
        p.model = "Flash Voyager GT".into();
        p.marketed = "16 GB".into();
        p.price_usd = 110;
        p.representative = false;
        p
    }

    /// Kingston DataTraveler I — entry-level USB drive, the paper's
    /// pathological low end. Figure 4: SW oscillation with period ≈ 128
    /// (4 MB AU at 32 KB IOs); Figure 7: small sequential writes cost
    /// far more than 32 KB ones; Table 3: RW ≈ 256 ms, *no* locality
    /// benefit, 4 partitions (×5), reverse ×8, in-place ×40.
    pub fn kingston_dti() -> DeviceProfile {
        let chips = 2;
        let chip = mlc_chip(64, 300, 60, 3_200); // 2 × 64 MB = 128 MB
        let array = NandArrayConfig {
            chip,
            chips,
            channels: 2,
        };
        DeviceProfile {
            id: "kingston-dti".into(),
            brand: "Kingston".into(),
            model: "DTI 4GB".into(),
            kind: DeviceKind::UsbDrive,
            marketed: "4 GB".into(),
            price_usd: 17,
            representative: true,
            ftl: FtlSpec::BlockMap(BlockMapConfig {
                array,
                capacity_bytes: 96 * MB, // 24 AUs of 4 MB
                au_blocks_per_chip: 4,   // AU = 8 × 512 KB = 4 MB → period 128
                chunk_bytes: 32 * 1024,
                open_aus: 4,
                policy: ReplacementPolicy::Ordered {
                    ooo_random_chunks: 90,  // effectively no locality benefit
                    ooo_inplace_chunks: 40, // in-place ×40
                    ooo_reverse_chunks: 7,  // reverse ×8
                },
            }),
            controller: ControllerConfig {
                per_io_overhead_ns: 150_000,
                transfer_mb_s: 30,
                pipelined_transfer: false,
            },
            stride_quirk: None,
        }
    }

    /// Kingston SD card — slowest device of the set (not among the
    /// seven presented devices).
    pub fn kingston_sd() -> DeviceProfile {
        let mut p = kingston_dti();
        p.id = "kingston-sd".into();
        p.model = "SD 4GB".into();
        p.kind = DeviceKind::SdCard;
        p.marketed = "2 GB".into();
        p.price_usd = 12;
        p.representative = false;
        p.controller = ControllerConfig {
            per_io_overhead_ns: 250_000,
            transfer_mb_s: 18,
            pipelined_transfer: false,
        };
        p
    }

    /// All eleven devices, in Table 2 order.
    pub fn all() -> Vec<DeviceProfile> {
        vec![
            memoright(),
            gskill(),
            samsung(),
            mtron(),
            transcend_slc(),
            transcend_mlc(),
            kingston_dthx(),
            corsair(),
            transcend_module(),
            kingston_dti(),
            kingston_sd(),
        ]
    }

    /// The seven representative devices the paper presents results for
    /// (arrow-marked in Table 2), in Table 3 order.
    pub fn representative() -> Vec<DeviceProfile> {
        vec![
            memoright(),
            mtron(),
            samsung(),
            transcend_module(),
            transcend_mlc(),
            kingston_dthx(),
            kingston_dti(),
        ]
    }

    /// Look a profile up by id, ignoring ASCII case (`Memoright` and
    /// `MEMORIGHT` both find `memoright`).
    pub fn by_id(id: &str) -> Option<DeviceProfile> {
        all().into_iter().find(|p| p.id.eq_ignore_ascii_case(id))
    }

    /// The catalogue ids, in Table 2 order — for "unknown device"
    /// error messages.
    pub fn ids() -> Vec<String> {
        all().into_iter().map(|p| p.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::catalog;
    use crate::block_device::BlockDevice;

    #[test]
    fn all_eleven_profiles_build() {
        let all = catalog::all();
        assert_eq!(all.len(), 11, "Table 2 lists eleven devices");
        for p in &all {
            let dev = p.build_sim(1);
            assert!(dev.capacity_bytes() > 0, "{} exports capacity", p.id);
            assert_eq!(dev.capacity_bytes(), p.sim_capacity_bytes());
        }
    }

    #[test]
    fn seven_representative_devices_match_table3_order() {
        let reps = catalog::representative();
        let ids: Vec<&str> = reps.iter().map(|p| p.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "memoright",
                "mtron",
                "samsung",
                "transcend-module",
                "transcend-mlc",
                "kingston-dthx",
                "kingston-dti"
            ]
        );
        assert!(reps.iter().all(|p| p.representative));
    }

    #[test]
    fn lookup_by_id() {
        assert!(catalog::by_id("memoright").is_some());
        assert!(catalog::by_id("nope").is_none());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        // A user typing `--device Memoright` means the Memoright; the
        // old lookup rebuilt the catalogue only to miss it.
        assert_eq!(catalog::by_id("Memoright").unwrap().id, "memoright");
        assert_eq!(catalog::by_id("KINGSTON-DTI").unwrap().id, "kingston-dti");
        assert_eq!(catalog::ids().len(), 11);
    }

    #[test]
    fn profiles_round_trip_through_json() {
        for p in catalog::all() {
            let back = super::DeviceProfile::from_json(&p.to_json()).expect("parse back");
            assert_eq!(back.id, p.id);
            assert_eq!(back.price_usd, p.price_usd);
            assert_eq!(back.controller, p.controller);
            assert_eq!(back.sim_capacity_bytes(), p.sim_capacity_bytes());
            assert_eq!(back.ftl_family(), p.ftl_family());
            // The JSON rendering itself is stable across one round trip.
            assert_eq!(back.to_json(), p.to_json());
        }
        assert!(super::DeviceProfile::from_json("{not json").is_err());
    }

    #[test]
    fn build_sim_seeds_diverge() {
        // Regression for the `_seed` bug: two differently-seeded sims of
        // the same profile must not produce identical traces, while
        // equal seeds stay bit-identical.
        let run = |seed: u64| -> Vec<std::time::Duration> {
            let mut dev = catalog::memoright().build_sim(seed);
            (0..64u64)
                .map(|i| dev.write((i * 37 % 256) * 32 * 1024, 32 * 1024).unwrap())
                .collect()
        };
        assert_eq!(run(1), run(1), "equal seeds are reproducible");
        assert_ne!(run(1), run(2), "different seeds must diverge");
    }

    #[test]
    fn fitted_profiles_honour_the_seed_too() {
        // Fitted profiles use the passthrough (zero-overhead)
        // controller; the jitter floor keeps their seed meaningful.
        let curve = uflip_ftl::LatencyCurve::flat(150_000);
        let profile = super::DeviceProfile::fitted(
            "fit",
            "test",
            uflip_ftl::FittedFtlConfig {
                capacity_bytes: 16 * 1024 * 1024,
                channels: 2,
                stripe_bytes: 2048,
                parallel_fraction: 0.5,
                read_seq: curve.clone(),
                read_rand: curve.clone(),
                write_seq: curve.clone(),
                write_rand: curve,
                align_granularity_bytes: 0,
                align_penalty: 1.0,
            },
        );
        let run = |seed: u64| -> Vec<std::time::Duration> {
            let mut dev = profile.build_sim(seed);
            (0..64u64)
                .map(|i| dev.read((i * 13 % 512) * 2048, 2048).unwrap())
                .collect()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "fitted sims must diverge across seeds");
    }

    #[test]
    fn ftl_families_match_device_classes() {
        // High-end SSDs are hybrid-mapped with a fully-associative log
        // pool (see DESIGN.md §4: a page-mapped model cannot keep
        // sequential writes at raw speed after random aging, which the
        // real devices do).
        assert_eq!(catalog::memoright().ftl_family(), "hybrid-log");
        assert_eq!(catalog::mtron().ftl_family(), "hybrid-log");
        assert_eq!(catalog::samsung().ftl_family(), "hybrid-log");
        assert_eq!(catalog::transcend_module().ftl_family(), "hybrid-log");
        assert_eq!(catalog::transcend_mlc().ftl_family(), "block-map");
        assert_eq!(catalog::kingston_dthx().ftl_family(), "block-map");
        assert_eq!(catalog::kingston_dti().ftl_family(), "block-map");
    }

    #[test]
    fn basic_io_works_on_every_profile() {
        for p in catalog::all() {
            let mut dev = p.build_sim(7);
            let w = dev.write(0, 32 * 1024).unwrap();
            let r = dev.read(0, 32 * 1024).unwrap();
            assert!(
                w > std::time::Duration::ZERO,
                "{}: write has nonzero rt",
                p.id
            );
            assert!(
                r > std::time::Duration::ZERO,
                "{}: read has nonzero rt",
                p.id
            );
        }
    }

    #[test]
    fn ssds_are_faster_than_usb_on_sequential_reads() {
        let mut ssd = catalog::memoright().build_sim(1);
        let mut usb = catalog::kingston_dti().build_sim(1);
        let a = ssd.read(0, 32 * 1024).unwrap();
        let b = usb.read(0, 32 * 1024).unwrap();
        assert!(
            b > a * 2,
            "USB ({b:?}) must be much slower than SSD ({a:?})"
        );
    }

    #[test]
    fn prices_match_table2() {
        let p: Vec<u32> = catalog::all().iter().map(|d| d.price_usd).collect();
        assert_eq!(p, vec![943, 694, 517, 407, 250, 199, 153, 110, 62, 17, 12]);
    }
}
