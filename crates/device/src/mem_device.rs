//! RAM-backed constant-latency device for executor tests.

use crate::block_device::BlockDevice;
use crate::Result;
use std::time::Duration;

/// A trivially simple device: constant per-IO latency plus a linear
/// per-byte cost, RAM capacity only tracked (no data stored). Useful to
/// unit-test executors and methodology code with exactly predictable
/// response times.
#[derive(Debug, Clone)]
pub struct MemDevice {
    capacity: u64,
    base: Duration,
    per_byte_ns: u64,
    clock: Duration,
    reads: u64,
    writes: u64,
}

impl MemDevice {
    /// Create a device of `capacity` bytes with the given cost model.
    pub fn new(capacity: u64, base: Duration, per_byte_ns: u64) -> Self {
        MemDevice {
            capacity,
            base,
            per_byte_ns,
            clock: Duration::ZERO,
            reads: 0,
            writes: 0,
        }
    }

    /// Number of reads served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of writes served.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    fn cost(&self, len: u64) -> Duration {
        self.base + Duration::from_nanos(self.per_byte_ns * len)
    }
}

impl BlockDevice for MemDevice {
    fn name(&self) -> &str {
        "mem"
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn read(&mut self, offset: u64, len: u64) -> Result<Duration> {
        self.check(offset, len)?;
        let rt = self.cost(len);
        self.clock += rt;
        self.reads += 1;
        Ok(rt)
    }

    fn write(&mut self, offset: u64, len: u64) -> Result<Duration> {
        self.check(offset, len)?;
        let rt = self.cost(len);
        self.clock += rt;
        self.writes += 1;
        Ok(rt)
    }

    fn idle(&mut self, d: Duration) {
        self.clock += d;
    }

    fn now(&self) -> Duration {
        self.clock
    }

    fn snapshot_capable(&self) -> bool {
        true
    }

    fn snapshot_state(&self) -> Option<Box<dyn crate::snapshot::DeviceState>> {
        Some(Box::new(self.clone()))
    }

    fn restore_state(&mut self, state: &dyn crate::snapshot::DeviceState) -> Result<()> {
        let snap = state.as_any().downcast_ref::<MemDevice>().ok_or(
            crate::DeviceError::SnapshotMismatch {
                device: "MemDevice",
            },
        )?;
        *self = snap.clone();
        Ok(())
    }

    fn fork(&self) -> Option<Box<dyn BlockDevice + Send>> {
        Some(Box::new(self.clone()))
    }
}

/// A `MemDevice`'s state is simply a copy of itself (the cost model is
/// configuration; clock and counters are the whole mutable state).
impl crate::snapshot::DeviceState for MemDevice {
    fn clone_state(&self) -> Box<dyn crate::snapshot::DeviceState> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_are_exact() {
        let mut d = MemDevice::new(1 << 20, Duration::from_micros(100), 2);
        let rt = d.write(0, 1024).unwrap();
        assert_eq!(rt, Duration::from_micros(100) + Duration::from_nanos(2048));
        assert_eq!(d.writes(), 1);
    }

    #[test]
    fn clock_accumulates_io_and_idle() {
        let mut d = MemDevice::new(1 << 20, Duration::from_micros(10), 0);
        d.read(0, 512).unwrap();
        d.idle(Duration::from_millis(1));
        d.write(512, 512).unwrap();
        assert_eq!(d.now(), Duration::from_micros(10 + 1000 + 10));
    }

    #[test]
    fn bounds_are_enforced() {
        let mut d = MemDevice::new(4096, Duration::ZERO, 0);
        assert!(d.read(4096, 512).is_err());
        assert!(d.write(0, 513).is_err());
    }
}
