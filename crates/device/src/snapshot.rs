//! Device state snapshots: capture, restore, fork.
//!
//! uFLIP §4.1 enforces a random device state before every measurement —
//! on the paper's hardware that cost 5 hours (Memoright) to 35 days
//! (Corsair). The simulator pays the equivalent price in simulated
//! FTL work: re-enforcing the state at every plan reset re-executes
//! tens of thousands of IOs through the full FTL. A snapshot taken
//! once, right after enforcement, turns every later reset into a deep
//! copy — O(memcpy) of the mapping tables instead of O(capacity) of
//! simulated flash traffic — and `fork` gives plan executors
//! independent device clones to run reset-delimited plan segments on
//! in parallel (see `uflip_core::suite`).
//!
//! The interface is object-safe on purpose: the executors drive
//! `&mut dyn BlockDevice`, so the capability is exposed as three
//! defaulted hooks on [`crate::BlockDevice`] ([`snapshot_state`],
//! [`restore_state`], [`fork`]) plus this opaque [`DeviceState`]
//! carrier. Devices that cannot snapshot (real hardware backends)
//! keep the defaults and callers fall back to re-enforcement.
//!
//! [`snapshot_state`]: crate::BlockDevice::snapshot_state
//! [`restore_state`]: crate::BlockDevice::restore_state
//! [`fork`]: crate::BlockDevice::fork

use std::any::Any;

/// An opaque, deep-copied device state.
///
/// Produced by [`crate::BlockDevice::snapshot_state`] and consumed by
/// [`crate::BlockDevice::restore_state`], which downcasts via
/// [`DeviceState::as_any`]. Restoring a state into a device of a
/// different concrete type fails with
/// [`crate::DeviceError::SnapshotMismatch`].
pub trait DeviceState: Send {
    /// Deep-copy this state (snapshots are restored many times; each
    /// restore consumes a copy).
    fn clone_state(&self) -> Box<dyn DeviceState>;

    /// Downcasting access for the owning device type.
    fn as_any(&self) -> &dyn Any;
}

impl Clone for Box<dyn DeviceState> {
    fn clone(&self) -> Self {
        self.clone_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Fake(u32);
    impl DeviceState for Fake {
        fn clone_state(&self) -> Box<dyn DeviceState> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn boxed_states_clone_and_downcast() {
        let b: Box<dyn DeviceState> = Box::new(Fake(7));
        let c = b.clone();
        assert_eq!(c.as_any().downcast_ref::<Fake>(), Some(&Fake(7)));
    }
}
