//! # uflip-device — flash block devices
//!
//! The device layer of the uFLIP reproduction. uFLIP measures *block
//! devices* — "flash chips and controllers whose role is to provide the
//! block abstraction at the flash device interface" (paper §2). This
//! crate provides:
//!
//! * [`BlockDevice`] — the timed block-device trait the benchmark
//!   executor drives: `read`/`write` return per-IO response times,
//!   `idle` models host think-time (pause/burst patterns, inter-run
//!   pauses);
//! * [`SimDevice`] — a simulated device: a controller model (per-IO
//!   command overhead + interconnect transfer) over any
//!   [`uflip_ftl::Ftl`], with a deterministic virtual clock;
//! * [`IoQueue`] — the NCQ-style submit/poll interface (`queue`
//!   module): simulated devices schedule in-flight IOs onto per-channel
//!   busy tracks, making channel overlap — and its collapse under
//!   stride-aligned patterns — emergent rather than scripted;
//! * [`TracingDevice`] — a transparent decorator that records every IO
//!   issued to any backend (sync and queued paths) as a
//!   [`uflip_trace::Trace`] for later replay;
//! * [`DirectIoFile`] — a real-hardware backend using `O_DIRECT` +
//!   `O_SYNC` (bypassing the host file system and IO scheduler, exactly
//!   as the paper's FlashIO tool did — §4.3) with wall-clock timing;
//! * [`ThreadedIoQueue`] — the real-device side of [`IoQueue`]: a
//!   worker pool issuing positioned reads/writes concurrently, so
//!   queue-depth sweeps and open-loop replays exercise actual
//!   OS/device parallelism instead of serial interleaving;
//! * [`MemDevice`] — a RAM-backed constant-latency device for executor
//!   tests;
//! * [`FaultyDevice`] — a fault-injection decorator applying a seeded
//!   [`FaultPlan`] (transient errors, latency spikes, stuck channels,
//!   queue-full storms, power loss) to any backend, on both IO paths;
//! * [`profiles`] — the **eleven devices of Table 2**, calibrated so the
//!   simulation reproduces the response-time shapes of Figures 3–8 and
//!   the summary behaviour of Table 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block_device;
pub mod direct_io;
pub mod error;
pub mod faults;
pub mod mem_device;
pub mod profiles;
pub mod queue;
pub mod sim_device;
pub mod snapshot;
pub mod threaded_queue;
pub mod tracing_device;

pub use block_device::BlockDevice;
pub use direct_io::DirectIoFile;
pub use error::DeviceError;
pub use faults::{FaultPlan, FaultyDevice, IoWindow, LbaRange, StuckChannel};
pub use mem_device::MemDevice;
pub use profiles::{DeviceKind, DeviceProfile, FtlSpec};
pub use queue::{IoQueue, Token};
pub use sim_device::{ControllerConfig, SimDevice, SimSnapshot, StrideQuirk};
pub use snapshot::DeviceState;
pub use threaded_queue::{RetrySpec, ThreadedIoQueue};
pub use tracing_device::TracingDevice;

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, DeviceError>;
