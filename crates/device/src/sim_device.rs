//! Simulated flash device: controller model over an FTL, virtual
//! clock, and a queue-depth-aware submission engine.
//!
//! [`SimDevice`] serves IOs through two interfaces:
//!
//! * the synchronous [`BlockDevice`] path — one IO at a time; each
//!   `read`/`write` returns its response time and advances the virtual
//!   clock. Here any *queueing* delay a workload would see is the
//!   caller's to simulate, because the device never holds more than
//!   one IO.
//! * the asynchronous [`IoQueue`] path (`submit`/`poll`) — the device
//!   holds up to `queue_depth` in-flight IOs and schedules each one
//!   onto the busy tracks of the flash channels it actually touched
//!   (via [`uflip_ftl::Ftl::channel_busy_ns`] deltas). Channel overlap
//!   — large striped IOs running fast, stride-aligned patterns
//!   collapsing onto one channel, deeper queues raising aggregate
//!   throughput — is **emergent** from this bookkeeping, not scripted.
//!   At queue depth 1 the engine reproduces the synchronous path's
//!   response times bit-for-bit (same FTL call sequence, same idle
//!   gaps, same controller composition), which is what keeps the
//!   paper-faithful serial results unchanged by default.
//!
//! FTL state transitions still occur in submission order in both
//! paths; the queue overlaps *timing attribution* only — exactly the
//! quantity the black-box benchmark measures.

use crate::block_device::BlockDevice;
use crate::queue::{ChannelTracks, IoQueue, Token};
use crate::Result;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;
use uflip_ftl::Ftl;
use uflip_obs::{CounterId, SinkHandle};
use uflip_patterns::{IoRequest, Mode};

/// Controller and interconnect model.
///
/// Hint 1 of the paper: "Flash devices do incur latency. Despite the
/// absence of mechanical parts, the software layers incur some overhead
/// per IO operation." That overhead is `per_io_overhead_ns`; the
/// interconnect (USB / IDE / SATA) contributes `len ÷ transfer_mb_s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Fixed command-processing overhead per IO, nanoseconds.
    pub per_io_overhead_ns: u64,
    /// Interconnect throughput in MB/s (USB 2.0 ≈ 30, IDE ≈ 60,
    /// SATA ≈ 150+).
    pub transfer_mb_s: u64,
    /// Whether the controller pipelines the interconnect transfer with
    /// flash work (high-end SSDs: response ≈ overhead + max(transfer,
    /// flash)); low-end devices serialize them (overhead + transfer +
    /// flash).
    pub pipelined_transfer: bool,
}

impl ControllerConfig {
    /// SATA SSD-class controller.
    pub const fn sata_ssd() -> Self {
        ControllerConfig {
            per_io_overhead_ns: 60_000,
            transfer_mb_s: 150,
            pipelined_transfer: true,
        }
    }

    /// USB 2.0 flash-drive-class controller.
    pub const fn usb2() -> Self {
        ControllerConfig {
            per_io_overhead_ns: 120_000,
            transfer_mb_s: 32,
            pipelined_transfer: false,
        }
    }

    /// IDE flash-module-class controller.
    pub const fn ide() -> Self {
        ControllerConfig {
            per_io_overhead_ns: 100_000,
            transfer_mb_s: 40,
            pipelined_transfer: false,
        }
    }

    /// Identity controller for fitted profiles: the measured latency
    /// curves already include command overhead and interconnect
    /// transfer, so the controller must add nothing on top.
    pub const fn passthrough() -> Self {
        ControllerConfig {
            per_io_overhead_ns: 0,
            transfer_mb_s: 0,
            pipelined_transfer: true,
        }
    }

    /// Transfer time for `len` bytes.
    pub fn transfer_ns(&self, len: u64) -> u64 {
        if self.transfer_mb_s == 0 {
            return 0;
        }
        len * 1_000 / self.transfer_mb_s // bytes * ns/MB→ actually bytes*1000/MBps = ns
    }
}

/// Black-box calibration quirk: several SSDs serve *strided* write
/// patterns (the Order micro-benchmark's large `Incr`) worse than
/// random ones — Table 3's "Large Incr" column reports ×2 (Mtron,
/// Samsung, Transcend module) to ×4 (Memoright) *the random-write
/// cost*. The paper treats devices as black boxes and reports the
/// behaviour without a mechanism; we model it as the controller's
/// LBA-hashing degrading under constant power-of-two strides (a known
/// failure mode of die-assignment hashing) and calibrate the factor per
/// profile. See DESIGN.md §4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrideQuirk {
    /// Minimum byte gap between consecutive writes to count as strided.
    pub min_stride: u64,
    /// Consecutive equal-gap writes before the penalty engages.
    pub trigger_after: u32,
    /// Multiplier applied to the flash-side time of strided writes.
    pub factor: f64,
}

/// The mutable state of a [`SimDevice`] minus the FTL: virtual clock,
/// stride-quirk detector and queue engine. One `#[derive(Clone)]`
/// struct on purpose — `Clone for SimDevice`, [`SimSnapshot`],
/// [`SimDevice::snapshot`] and [`SimDevice::restore`] all copy it as a
/// unit, so a future field cannot be cloned in one place and silently
/// forgotten in another (the bit-identical restore guarantee depends
/// on completeness).
#[derive(Debug, Clone)]
struct SimState {
    clock_ns: u64,
    /// SplitMix64 state for the per-IO service-time jitter. `None`
    /// until [`SimDevice::with_seed`] — devices built without a seed
    /// (unit-test fixtures asserting exact schedules) draw no jitter.
    /// Part of `SimState` so snapshots and clones replay the identical
    /// jitter stream.
    rng: Option<u64>,
    last_write_offset: Option<u64>,
    last_gap: Option<i128>,
    equal_gap_run: u32,
    // --- queue engine state ---
    queue_depth: u32,
    tracks: ChannelTracks,
    /// Min-heap of (completion ns, token) for in-flight IOs.
    inflight: BinaryHeap<Reverse<(u64, u64)>>,
    next_token: u64,
    /// Latest scheduled completion — the reference point for detecting
    /// idle gaps between queue submissions (background reclamation).
    queue_busy_end_ns: u64,
    /// Completion times of IOs occupying the device's service slots.
    /// A new IO is admitted only once a slot is free: at queue depth
    /// *d*, service of the (d+1)-th outstanding IO cannot begin before
    /// the earliest in-service IO completes. This is what makes depth 1
    /// reproduce the synchronous path exactly.
    slots: BinaryHeap<Reverse<u64>>,
}

/// A simulated flash device: FTL + controller + virtual clock + NCQ
/// submission queue.
pub struct SimDevice {
    name: String,
    ftl: Box<dyn Ftl + Send>,
    controller: ControllerConfig,
    stride_quirk: Option<StrideQuirk>,
    state: SimState,
    /// Observability sink; never affects timing. Kept outside
    /// [`SimState`] — snapshots capture device behaviour, not who is
    /// watching it.
    sink: SinkHandle,
    /// Cached `sink.is_enabled()` so the no-op path costs one bool test.
    sink_enabled: bool,
    /// Scratch buffers for per-channel busy accounting (hot path:
    /// reused across queued IOs so submission never allocates). Not
    /// semantic state: filled and consumed within one queued IO.
    busy_before: Vec<u64>,
    busy_after: Vec<u64>,
    busy_delta: Vec<u64>,
}

/// A complete deep copy of a [`SimDevice`]'s state: the FTL (mapping
/// tables, free pools, log blocks, write cache and the NAND array's
/// page states, wear and statistics), the virtual clock, the stride-
/// quirk detector and the queue engine (channel tracks, in-flight
/// heap, service slots, token counter).
///
/// Captured by [`SimDevice::snapshot`] / `BlockDevice::snapshot_state`
/// and consumed by [`SimDevice::restore`] / `BlockDevice::
/// restore_state`. Restoring rewinds the device bit-for-bit to the
/// captured instant — including the clock — which is what makes plan
/// executions from a restored state exactly reproducible.
pub struct SimSnapshot {
    ftl: Box<dyn Ftl + Send>,
    state: SimState,
}

impl Clone for SimSnapshot {
    fn clone(&self) -> Self {
        SimSnapshot {
            ftl: self.ftl.clone_box(),
            state: self.state.clone(),
        }
    }
}

impl std::fmt::Debug for SimSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSnapshot")
            .field("clock_ns", &self.state.clock_ns)
            .finish_non_exhaustive()
    }
}

impl crate::snapshot::DeviceState for SimSnapshot {
    fn clone_state(&self) -> Box<dyn crate::snapshot::DeviceState> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl Clone for SimDevice {
    fn clone(&self) -> Self {
        SimDevice {
            name: self.name.clone(),
            ftl: self.ftl.clone_box(),
            controller: self.controller,
            stride_quirk: self.stride_quirk,
            state: self.state.clone(),
            sink: self.sink.clone(),
            sink_enabled: self.sink_enabled,
            // Scratch buffers carry no state, but a clone that starts
            // them empty pays three fresh channel-sized growths on its
            // first queued IO — measurable when forks run short
            // benchmark shards. Pre-size to the donor's working set.
            busy_before: Vec::with_capacity(self.busy_before.capacity()),
            busy_after: Vec::with_capacity(self.busy_after.capacity()),
            busy_delta: Vec::with_capacity(self.busy_delta.capacity()),
        }
    }
}

impl std::fmt::Debug for SimDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimDevice")
            .field("name", &self.name)
            .field("clock_ns", &self.state.clock_ns)
            .finish_non_exhaustive()
    }
}

impl SimDevice {
    /// Wrap an FTL in a controller model.
    pub fn new(
        name: impl Into<String>,
        ftl: Box<dyn Ftl + Send>,
        controller: ControllerConfig,
        stride_quirk: Option<StrideQuirk>,
    ) -> Self {
        let channels = ftl.channels();
        SimDevice {
            name: name.into(),
            ftl,
            controller,
            stride_quirk,
            state: SimState {
                clock_ns: 0,
                rng: None,
                last_write_offset: None,
                last_gap: None,
                equal_gap_run: 0,
                queue_depth: 1,
                tracks: ChannelTracks::new(channels),
                inflight: BinaryHeap::new(),
                next_token: 0,
                queue_busy_end_ns: 0,
                slots: BinaryHeap::new(),
            },
            sink: SinkHandle::null(),
            sink_enabled: false,
            busy_before: Vec::new(),
            busy_after: Vec::new(),
            busy_delta: Vec::new(),
        }
    }

    /// Set the NCQ queue depth at construction time. The default of 1
    /// keeps the queue path equivalent to the synchronous path.
    pub fn with_queue_depth(mut self, depth: u32) -> Self {
        self.state.queue_depth = depth.max(1);
        self
    }

    /// Seed the device's per-IO service-time jitter stream.
    ///
    /// Real controllers show sub-microsecond command-scheduling
    /// variation between otherwise identical commands; the simulator
    /// models it as a deterministic SplitMix64 stream adding up to
    /// `per_io_overhead_ns / 64` (≈ 1.5 % of the command overhead —
    /// floored at 64 ns so zero-overhead controllers, e.g. the
    /// passthrough one fitted profiles use, still honour the seed —
    /// far below every behaviour the paper measures) to each IO. Two
    /// devices built with the same seed produce bit-identical traces;
    /// different seeds diverge — which is what makes
    /// `DeviceProfile::build_sim(seed)` honour its seed argument.
    /// Devices never seeded draw no jitter at all.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.state.rng = Some(seed);
        self
    }

    /// Draw the next service-time jitter in nanoseconds (SplitMix64).
    fn draw_jitter(&mut self) -> u64 {
        let Some(rng) = self.state.rng.as_mut() else {
            return 0;
        };
        let range = (self.controller.per_io_overhead_ns / 64).max(64);
        *rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z % (range + 1)
    }

    /// Access the underlying FTL (white-box statistics).
    pub fn ftl(&self) -> &dyn Ftl {
        self.ftl.as_ref()
    }

    /// Number of flash channels the queue engine schedules over.
    pub fn channels(&self) -> u32 {
        self.state.tracks.channels() as u32
    }

    fn compose(&self, flash_ns: u64, len: u64) -> u64 {
        let xfer = self.controller.transfer_ns(len);
        let ov = self.controller.per_io_overhead_ns;
        if self.controller.pipelined_transfer {
            ov + xfer.max(flash_ns)
        } else {
            ov + xfer + flash_ns
        }
    }

    /// Capture the device's complete state (see [`SimSnapshot`]).
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            ftl: self.ftl.clone_box(),
            state: self.state.clone(),
        }
    }

    /// Rewind the device to a previously captured [`SimSnapshot`] —
    /// FTL, NAND array, clock, quirk detector and queue engine. The
    /// snapshot is left intact and can be restored any number of
    /// times, on this device or on any [`Clone`] of it.
    pub fn restore(&mut self, snap: &SimSnapshot) {
        self.ftl = snap.ftl.clone_box();
        self.state = snap.state.clone();
        self.busy_delta.clear();
        // The restored FTL carries whatever sink was attached when the
        // snapshot was taken; re-attach this device's sink so counters
        // keep flowing to the current observer (obs counters are
        // monotonic — a restore never rewinds them).
        self.ftl.set_sink(self.sink.clone());
    }

    /// Snapshot the FTL's cumulative per-channel busy totals before a
    /// synchronous IO (enabled sinks only).
    fn sync_busy_before(&mut self) {
        let mut before = std::mem::take(&mut self.busy_before);
        self.ftl.channel_busy_ns(&mut before);
        self.busy_before = before;
    }

    /// Diff the busy totals after a synchronous IO and attribute the
    /// flash time to channels on the sink's utilization timeline. FTLs
    /// without channel attribution collapse to channel 0.
    fn sync_busy_emit(&mut self, start_ns: u64, flash_ns: u64) {
        let mut after = std::mem::take(&mut self.busy_after);
        self.ftl.channel_busy_ns(&mut after);
        if after.is_empty() {
            if flash_ns > 0 {
                self.sink.channel_busy(0, start_ns, flash_ns);
            }
        } else {
            for (ch, (a, b)) in after
                .iter()
                .zip(self.busy_before.iter().chain(std::iter::repeat(&0)))
                .enumerate()
            {
                let d = a.saturating_sub(*b);
                if d > 0 {
                    self.sink.channel_busy(ch, start_ns, d);
                }
            }
        }
        self.busy_after = after;
    }

    /// Update stride detection; returns the flash-time multiplier for
    /// this write.
    fn stride_factor(&mut self, offset: u64) -> f64 {
        let Some(q) = self.stride_quirk else {
            return 1.0;
        };
        let gap = match self.state.last_write_offset {
            Some(prev) => offset as i128 - prev as i128,
            None => 0,
        };
        self.state.last_write_offset = Some(offset);
        let strided = gap.unsigned_abs() as u64 >= q.min_stride;
        if strided && self.state.last_gap == Some(gap) {
            self.state.equal_gap_run = self.state.equal_gap_run.saturating_add(1);
        } else {
            self.state.equal_gap_run = 0;
        }
        self.state.last_gap = Some(gap);
        if strided && self.state.equal_gap_run >= q.trigger_after {
            q.factor
        } else {
            1.0
        }
    }
}

impl BlockDevice for SimDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn capacity_bytes(&self) -> u64 {
        self.ftl.capacity_bytes()
    }

    fn read(&mut self, offset: u64, len: u64) -> Result<Duration> {
        self.check(offset, len)?;
        let start_ns = self.state.clock_ns;
        if self.sink_enabled {
            self.sync_busy_before();
        }
        let flash = self.ftl.read(offset / 512, (len / 512) as u32)?;
        let rt = self.compose(flash, len) + self.draw_jitter();
        self.state.clock_ns += rt;
        self.state.queue_busy_end_ns = self.state.queue_busy_end_ns.max(self.state.clock_ns);
        if self.sink_enabled {
            self.sync_busy_emit(start_ns, flash);
        }
        Ok(Duration::from_nanos(rt))
    }

    fn write(&mut self, offset: u64, len: u64) -> Result<Duration> {
        self.check(offset, len)?;
        let start_ns = self.state.clock_ns;
        let factor = self.stride_factor(offset);
        if self.sink_enabled {
            self.sync_busy_before();
        }
        let flash = self.ftl.write(offset / 512, (len / 512) as u32)?;
        let flash = (flash as f64 * factor) as u64;
        let rt = self.compose(flash, len) + self.draw_jitter();
        self.state.clock_ns += rt;
        self.state.queue_busy_end_ns = self.state.queue_busy_end_ns.max(self.state.clock_ns);
        if self.sink_enabled {
            self.sync_busy_emit(start_ns, flash);
        }
        Ok(Duration::from_nanos(rt))
    }

    fn idle(&mut self, d: Duration) {
        let ns = d.as_nanos() as u64;
        self.ftl.on_idle(ns);
        self.state.clock_ns += ns;
        // Keep the queue engine's idle-gap reference in step so a later
        // queued submission does not re-credit this (already credited)
        // idle time to background reclamation.
        self.state.queue_busy_end_ns = self.state.queue_busy_end_ns.max(self.state.clock_ns);
    }

    fn now(&self) -> Duration {
        Duration::from_nanos(self.state.clock_ns)
    }

    fn io_queue(&mut self) -> Option<&mut dyn crate::queue::IoQueue> {
        Some(self)
    }

    fn io_queue_ref(&self) -> Option<&dyn crate::queue::IoQueue> {
        Some(self)
    }

    fn set_sink(&mut self, sink: uflip_obs::SinkHandle) {
        self.sink_enabled = sink.is_enabled();
        self.ftl.set_sink(sink.clone());
        self.sink = sink;
    }

    fn snapshot_capable(&self) -> bool {
        true
    }

    fn snapshot_state(&self) -> Option<Box<dyn crate::snapshot::DeviceState>> {
        Some(Box::new(self.snapshot()))
    }

    fn restore_state(&mut self, state: &dyn crate::snapshot::DeviceState) -> Result<()> {
        let snap = state.as_any().downcast_ref::<SimSnapshot>().ok_or(
            crate::DeviceError::SnapshotMismatch {
                device: "SimDevice",
            },
        )?;
        self.restore(snap);
        Ok(())
    }

    fn fork(&self) -> Option<Box<dyn BlockDevice + Send>> {
        Some(Box::new(self.clone()))
    }

    fn recover(&mut self) -> Result<uflip_ftl::RecoveryReport> {
        // Power loss tears the command queue: in-flight IOs never
        // complete and their service reservations vanish with them.
        self.state.inflight.clear();
        self.state.slots.clear();
        self.state.queue_busy_end_ns = self.state.queue_busy_end_ns.min(self.state.clock_ns);
        // Remount the FTL: volatile state is gone, durable mappings are
        // rebuilt from NAND ground truth.
        Ok(self.ftl.recover()?)
    }
}

impl SimDevice {
    /// Run the FTL work for a queued IO and attribute it to channels.
    ///
    /// Returns the (stride-scaled) scalar flash time used for the
    /// response-time composition, plus the per-channel busy deltas the
    /// scheduler occupies. FTLs without channel attribution collapse
    /// to a single serialized track.
    /// The busy deltas land in `self.busy_delta` (scratch, valid until
    /// the next queued IO); the scalar flash time is returned.
    fn queued_flash_op(&mut self, io: &IoRequest) -> Result<u64> {
        let lba = io.offset / 512;
        let sectors = (io.size / 512) as u32;
        let mut before = std::mem::take(&mut self.busy_before);
        self.ftl.channel_busy_ns(&mut before);
        let (flash, factor) = match io.mode {
            Mode::Read => (self.ftl.read(lba, sectors)?, 1.0),
            Mode::Write => {
                let factor = self.stride_factor(io.offset);
                (self.ftl.write(lba, sectors)?, factor)
            }
        };
        let mut after = std::mem::take(&mut self.busy_after);
        self.ftl.channel_busy_ns(&mut after);
        self.busy_delta.clear();
        if after.is_empty() {
            self.busy_delta.push(flash);
        } else {
            self.busy_delta.extend(
                after
                    .iter()
                    .zip(before.iter().chain(std::iter::repeat(&0)))
                    .map(|(a, b)| a.saturating_sub(*b)),
            );
        }
        self.busy_before = before;
        self.busy_after = after;
        // uflip-lint: allow(UF006, reason = "1.0 is the exact jitter-disabled sentinel; multiplying would perturb fingerprints")
        let flash = if factor == 1.0 {
            flash
        } else {
            (flash as f64 * factor) as u64
        };
        // uflip-lint: allow(UF006, reason = "1.0 is the exact jitter-disabled sentinel; multiplying would perturb fingerprints")
        if factor != 1.0 {
            for b in self.busy_delta.iter_mut() {
                *b = (*b as f64 * factor) as u64;
            }
        }
        Ok(flash)
    }
}

impl IoQueue for SimDevice {
    fn queue_depth(&self) -> u32 {
        self.state.queue_depth
    }

    fn set_queue_depth(&mut self, depth: u32) -> Result<()> {
        if !self.state.inflight.is_empty() {
            return Err(crate::DeviceError::DepthChangeInFlight {
                in_flight: self.state.inflight.len(),
            });
        }
        self.state.queue_depth = depth.max(1);
        Ok(())
    }

    fn in_flight(&self) -> usize {
        self.state.inflight.len()
    }

    fn submit(&mut self, io: &IoRequest, at: Duration) -> Result<Token> {
        if self.state.inflight.len() >= self.state.queue_depth as usize {
            if self.sink_enabled {
                self.sink.add(CounterId::QueueFullRejections, 1);
            }
            return Err(crate::DeviceError::QueueFull {
                depth: self.state.queue_depth,
            });
        }
        self.check(io.offset, io.size)?;
        let t_sub = at.as_nanos() as u64;
        // A fully drained queue sitting idle lets background
        // reclamation run, exactly as `idle` does on the sync path.
        if self.state.inflight.is_empty() && t_sub > self.state.queue_busy_end_ns {
            self.ftl.on_idle(t_sub - self.state.queue_busy_end_ns);
        }
        let flash = self.queued_flash_op(io)?;
        // NCQ admission: service begins once a queue slot is free.
        let mut admit = t_sub;
        while self.state.slots.len() >= self.state.queue_depth as usize {
            let Some(Reverse(freed)) = self.state.slots.pop() else {
                break;
            };
            admit = admit.max(freed);
        }
        let busy = std::mem::take(&mut self.busy_delta);
        let start = self.state.tracks.start_ns(admit, &busy);
        self.state.tracks.occupy(start, &busy);
        if self.sink_enabled {
            self.sink.add(CounterId::QueueSubmissions, 1);
            for (ch, &b) in busy.iter().enumerate() {
                if b > 0 {
                    self.sink.channel_busy(ch, start, b);
                }
            }
        }
        self.busy_delta = busy;
        let rt = self.compose(flash, io.size) + self.draw_jitter();
        let completion = start + rt;
        self.state.slots.push(Reverse(completion));
        self.state.queue_busy_end_ns = self.state.queue_busy_end_ns.max(completion);
        self.state.clock_ns = self.state.clock_ns.max(completion);
        let token = Token::from_raw(self.state.next_token);
        self.state.next_token += 1;
        self.state.inflight.push(Reverse((completion, token.raw())));
        Ok(token)
    }

    fn next_completion(&self) -> Option<Duration> {
        self.state
            .inflight
            .peek()
            .map(|Reverse((ns, _))| Duration::from_nanos(*ns))
    }

    fn poll(&mut self) -> Option<(Token, Duration)> {
        let done = self
            .state
            .inflight
            .pop()
            .map(|Reverse((ns, tok))| (Token::from_raw(tok), Duration::from_nanos(ns)));
        if done.is_some() && self.sink_enabled {
            self.sink.add(CounterId::QueueCompletions, 1);
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uflip_ftl::{PageMapConfig, PageMapFtl};

    fn dev(quirk: Option<StrideQuirk>) -> SimDevice {
        let ftl = PageMapFtl::new(PageMapConfig::tiny()).unwrap();
        SimDevice::new(
            "test-ssd",
            Box::new(ftl),
            ControllerConfig {
                per_io_overhead_ns: 1000,
                transfer_mb_s: 0,
                pipelined_transfer: true,
            },
            quirk,
        )
    }

    #[test]
    fn transfer_time_math() {
        let c = ControllerConfig {
            per_io_overhead_ns: 0,
            transfer_mb_s: 32,
            pipelined_transfer: false,
        };
        // 32 KB at 32 MB/s = 1 ms.
        assert_eq!(c.transfer_ns(32 * 1024), 1_024_000);
    }

    #[test]
    fn overhead_applies_to_every_io() {
        let mut d = dev(None);
        let rt = d.read(0, 512).unwrap();
        assert!(
            rt >= Duration::from_nanos(1000),
            "unmapped read still pays the overhead"
        );
    }

    #[test]
    fn clock_advances_with_io_and_idle() {
        let mut d = dev(None);
        let rt = d.write(0, 512).unwrap();
        d.idle(Duration::from_millis(2));
        assert_eq!(d.now(), rt + Duration::from_millis(2));
    }

    #[test]
    fn alignment_enforced() {
        let mut d = dev(None);
        assert!(d.write(100, 512).is_err());
        assert!(d.read(0, 0).is_err());
    }

    #[test]
    fn stride_quirk_engages_after_repeated_equal_gaps() {
        let q = StrideQuirk {
            min_stride: 4096,
            trigger_after: 2,
            factor: 10.0,
        };
        let mut with = dev(Some(q));
        let mut without = dev(None);
        // Four writes with a constant 8 KB stride.
        let offs = [0u64, 8192, 16384, 24576, 32768];
        let mut with_last = Duration::ZERO;
        let mut without_last = Duration::ZERO;
        for &o in &offs {
            with_last = with.write(o, 512).unwrap();
            without_last = without.write(o, 512).unwrap();
        }
        assert!(
            with_last > without_last,
            "strided writes must be penalized once the quirk engages \
             ({with_last:?} vs {without_last:?})"
        );
    }

    #[test]
    fn stride_quirk_ignores_sequential_writes() {
        let q = StrideQuirk {
            min_stride: 4096,
            trigger_after: 2,
            factor: 10.0,
        };
        let mut with = dev(Some(q));
        let mut without = dev(None);
        for i in 0..6u64 {
            let a = with.write(i * 512, 512).unwrap();
            let b = without.write(i * 512, 512).unwrap();
            assert_eq!(a, b, "512 B steps are below min_stride");
        }
    }

    #[test]
    fn queue_depth_change_mid_flight_is_rejected() {
        use crate::queue::IoQueue;
        let mut d = dev(None);
        d.set_queue_depth(4).unwrap();
        let io = uflip_patterns::IoRequest {
            index: 0,
            offset: 0,
            size: 512,
            mode: Mode::Write,
            submit_delay: Duration::ZERO,
            process: 0,
        };
        d.submit(&io, Duration::ZERO).unwrap();
        assert!(matches!(
            d.set_queue_depth(8),
            Err(crate::DeviceError::DepthChangeInFlight { in_flight: 1 })
        ));
        assert_eq!(d.queue_depth(), 4, "failed change leaves depth intact");
        while d.poll().is_some() {}
        d.set_queue_depth(8).unwrap();
        assert_eq!(d.queue_depth(), 8);
    }

    #[test]
    fn pipelined_controller_overlaps_transfer() {
        let slow_xfer = ControllerConfig {
            per_io_overhead_ns: 0,
            transfer_mb_s: 1,
            pipelined_transfer: true,
        };
        let serial_xfer = ControllerConfig {
            per_io_overhead_ns: 0,
            transfer_mb_s: 1,
            pipelined_transfer: false,
        };
        let ftl_a = PageMapFtl::new(PageMapConfig::tiny()).unwrap();
        let ftl_b = PageMapFtl::new(PageMapConfig::tiny()).unwrap();
        let mut a = SimDevice::new("a", Box::new(ftl_a), slow_xfer, None);
        let mut b = SimDevice::new("b", Box::new(ftl_b), serial_xfer, None);
        let ra = a.write(0, 512).unwrap();
        let rb = b.write(0, 512).unwrap();
        assert!(rb > ra, "serialized transfer must cost more than pipelined");
    }
}
