//! Fault injection: a seeded, serializable [`FaultPlan`] applied by a
//! transparent [`FaultyDevice`] decorator over any [`BlockDevice`].
//!
//! Real flash devices fail in ways the paper's healthy-device
//! measurements never show: transient read/write errors the firmware
//! retries through, latency spikes from internal housekeeping, command
//! queues that reject submissions under pressure, and — the one that
//! defines FTL design — power loss mid-workload. This module injects
//! those failures *deterministically* so the retry/timeout machinery in
//! `uflip_core::policy` and the crash-recovery paths
//! ([`BlockDevice::recover`], `uflip_ftl::Ftl::recover`) can be
//! exercised and measured like any other behaviour.
//!
//! Two guarantees shape the design:
//!
//! * **Transparency when disarmed.** A [`FaultyDevice`] wrapping a
//!   device with an empty plan forwards every call unchanged and draws
//!   *zero* random numbers: fingerprints, response times and channel
//!   schedules are bit-identical to the bare device
//!   (`tests/fault_recovery.rs` asserts this property-style).
//! * **Determinism when armed.** All injection decisions come from one
//!   SplitMix64 stream seeded by [`FaultPlan::seed`] and advanced in a
//!   fixed per-IO order, so equal plans replay equal fault sequences
//!   over equal workloads — a failing run is exactly reproducible.
//!
//! Faults are decided at the *arrival* of an IO (synchronous call or
//! queued `submit`), indexed by a monotone arrival counter. Rejections
//! that model back-pressure rather than IO failure —
//! [`DeviceError::QueueFull`] storms — do **not** consume an arrival
//! index or a random draw, so a submitter that polls and resubmits
//! meets the same fault schedule it would have met unrejected.

use crate::block_device::BlockDevice;
use crate::error::DeviceError;
use crate::queue::{IoQueue, Token};
use crate::Result;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Duration;
use uflip_nand::FailureKind;
use uflip_obs::{CounterId, SinkHandle};
use uflip_patterns::{IoRequest, Mode};

/// A half-open `[start, end)` range of 512-byte sectors. When a plan
/// lists target ranges, error injection only fires for IOs that overlap
/// at least one of them (the random stream still advances, so adding a
/// range never shifts the fault schedule of IOs outside it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LbaRange {
    /// First sector of the range.
    pub start: u64,
    /// One past the last sector.
    pub end: u64,
}

impl LbaRange {
    /// Whether an IO spanning `[lba, lba + sectors)` overlaps the range.
    pub fn overlaps(&self, lba: u64, sectors: u64) -> bool {
        self.start < lba + sectors && lba < self.end
    }
}

/// A half-open `[start, end)` window of IO arrival indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoWindow {
    /// First arrival index inside the window.
    pub start: u64,
    /// One past the last arrival index.
    pub end: u64,
}

impl IoWindow {
    /// Whether `index` falls inside the window.
    pub fn contains(&self, index: u64) -> bool {
        self.start <= index && index < self.end
    }
}

/// A flash channel that responds slowly — a stuck/degraded die. IOs
/// whose starting offset stripes onto the stuck channel pay `extra_ns`
/// of latency. The decorator cannot see the backend's real die
/// assignment, so the stripe model (offset ÷ `stripe_bytes` mod
/// `channels`) is declared in the plan; match it to the profile's
/// geometry to pin a real channel, or use it as a deterministic
/// "every Nth stripe is slow" pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StuckChannel {
    /// The slow channel's index in `0..channels`.
    pub channel: u32,
    /// Number of channels in the stripe model.
    pub channels: u32,
    /// Bytes per stripe unit.
    pub stripe_bytes: u64,
    /// Extra latency per IO landing on the stuck channel, nanoseconds.
    pub extra_ns: u64,
}

impl StuckChannel {
    /// Whether an IO starting at byte `offset` lands on the stuck
    /// channel.
    pub fn hits(&self, offset: u64) -> bool {
        self.channels > 0
            && self.stripe_bytes > 0
            && (offset / self.stripe_bytes) % self.channels as u64 == self.channel as u64
    }
}

/// A seeded, serializable schedule of injectable faults (see the
/// module docs). The default plan is empty — armed nowhere, injecting
/// nothing — and a [`FaultyDevice`] carrying it is bit-transparent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Seed of the SplitMix64 stream all probabilistic decisions draw
    /// from. Equal seeds (and equal knobs) inject identical fault
    /// sequences over identical workloads.
    #[serde(default)]
    pub seed: u64,
    /// Per-read probability of an injected transient error in `[0, 1]`.
    #[serde(default)]
    pub read_error_rate: f64,
    /// Per-write probability of an injected transient error in `[0, 1]`.
    #[serde(default)]
    pub write_error_rate: f64,
    /// Restrict error injection to IOs overlapping these sector ranges
    /// (empty = whole device).
    #[serde(default)]
    pub target_lbas: Vec<LbaRange>,
    /// Per-IO probability of a latency spike in `[0, 1]`.
    #[serde(default)]
    pub latency_spike_rate: f64,
    /// Duration of each injected latency spike, nanoseconds.
    #[serde(default)]
    pub latency_spike_ns: u64,
    /// A permanently slow channel (deterministic, not drawn).
    #[serde(default)]
    pub stuck_channel: Option<StuckChannel>,
    /// Arrival-index window during which queued submissions are
    /// rejected with [`DeviceError::QueueFull`] whenever the backend
    /// has IOs in flight (a controller refusing new commands under
    /// load). Rejections consume no arrival index and no random draw.
    #[serde(default)]
    pub queue_full_storm: Option<IoWindow>,
    /// Cut power at this arrival index: the indexed IO (and every one
    /// after it) fails with [`DeviceError::PowerLoss`] until
    /// [`BlockDevice::recover`] is called.
    #[serde(default)]
    pub power_loss_at: Option<u64>,
}

impl FaultPlan {
    /// A plan injecting transient read errors at `rate` — the CI smoke
    /// configuration.
    pub fn transient_reads(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            read_error_rate: rate,
            ..FaultPlan::default()
        }
    }

    /// A plan that cuts power at arrival index `index`.
    pub fn power_loss_at(seed: u64, index: u64) -> Self {
        FaultPlan {
            seed,
            power_loss_at: Some(index),
            ..FaultPlan::default()
        }
    }

    /// Whether the plan can inject anything at all. A disarmed plan
    /// makes [`FaultyDevice`] a pure forwarder that never touches its
    /// random stream.
    pub fn is_armed(&self) -> bool {
        self.read_error_rate > 0.0
            || self.write_error_rate > 0.0
            || (self.latency_spike_rate > 0.0 && self.latency_spike_ns > 0)
            || self.stuck_channel.is_some()
            || self.queue_full_storm.is_some()
            || self.power_loss_at.is_some()
    }

    /// Validate rates. Serialized plans are user input; a rate of `1.5`
    /// should be a loud error, not a certainly-failing device.
    pub fn validate(&self) -> std::result::Result<(), String> {
        for (name, rate) in [
            ("read_error_rate", self.read_error_rate),
            ("write_error_rate", self.write_error_rate),
            ("latency_spike_rate", self.latency_spike_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                return Err(format!("{name} must be in [0, 1], got {rate}"));
            }
        }
        if let Some(sc) = &self.stuck_channel {
            if sc.channels == 0 || sc.channel >= sc.channels || sc.stripe_bytes == 0 {
                return Err(format!(
                    "stuck_channel needs channel < channels and stripe_bytes > 0, \
                     got channel {} of {}, stripe {}",
                    sc.channel, sc.channels, sc.stripe_bytes
                ));
            }
        }
        Ok(())
    }

    /// Load a plan from a JSON file (validated).
    pub fn load_json(path: &Path) -> std::result::Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read fault plan {}: {e}", path.display()))?;
        let plan: FaultPlan = serde_json::from_str(&text)
            .map_err(|e| format!("bad fault plan {}: {e}", path.display()))?;
        plan.validate()
            .map_err(|e| format!("invalid fault plan {}: {e}", path.display()))?;
        Ok(plan)
    }

    /// Serialize the plan as pretty JSON.
    pub fn to_json(&self) -> String {
        // uflip-lint: allow(UF002, reason = "serialization of a plain plan struct cannot fail")
        serde_json::to_string_pretty(self).expect("FaultPlan serializes")
    }
}

/// A block-device decorator that injects the faults of a [`FaultPlan`]
/// into every IO path — synchronous `read`/`write` and the queued
/// `submit`/`poll` engine — while forwarding everything else to the
/// wrapped backend (see the module docs for the transparency and
/// determinism guarantees).
///
/// After an injected power loss every IO fails with
/// [`DeviceError::PowerLoss`] and `poll` reports nothing (in-flight
/// IOs are torn); [`BlockDevice::recover`] clears the crash and runs
/// the backend's own recovery (FTL remount for simulated devices).
#[derive(Debug)]
pub struct FaultyDevice<D: BlockDevice> {
    inner: D,
    plan: FaultPlan,
    armed: bool,
    /// SplitMix64 state; advanced only by armed probabilistic knobs.
    rng: u64,
    /// Arrival index of the next fault-eligible IO.
    io_index: u64,
    /// `Some(index)` after an injected power loss, until recovery.
    crashed: Option<u64>,
    sink: SinkHandle,
    sink_enabled: bool,
}

impl<D: BlockDevice> FaultyDevice<D> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: D, plan: FaultPlan) -> Self {
        let armed = plan.is_armed();
        let rng = plan.seed;
        FaultyDevice {
            inner,
            plan,
            armed,
            rng,
            io_index: 0,
            crashed: None,
            sink: SinkHandle::null(),
            sink_enabled: false,
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the wrapped device.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwrap into the backend.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Arrival index the next fault-eligible IO will carry.
    pub fn io_index(&self) -> u64 {
        self.io_index
    }

    /// Whether the device is in the post-power-loss state.
    pub fn crashed(&self) -> bool {
        self.crashed.is_some()
    }

    /// Next raw SplitMix64 draw.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next draw as a uniform `f64` in `[0, 1)`.
    fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether an IO is inside the plan's error-target ranges.
    fn targeted(&self, offset: u64, len: u64) -> bool {
        if self.plan.target_lbas.is_empty() {
            return true;
        }
        let lba = offset / 512;
        let sectors = (len / 512).max(1);
        self.plan
            .target_lbas
            .iter()
            .any(|r| r.overlaps(lba, sectors))
    }

    /// Decide this IO's fate: consume one arrival index, draw each
    /// armed probabilistic knob in fixed order (error, then spike), and
    /// either fail the IO or return the extra latency it must pay.
    fn decide(&mut self, mode: Mode, offset: u64, len: u64) -> Result<u64> {
        if let Some(index) = self.crashed {
            return Err(DeviceError::PowerLoss { index });
        }
        let index = self.io_index;
        if self.plan.power_loss_at == Some(index) {
            self.crashed = Some(index);
            // Consume the crash point so the schedule moves past it
            // once the device is recovered.
            self.io_index += 1;
            if self.sink_enabled {
                self.sink.add(CounterId::PowerLossEvents, 1);
            }
            return Err(DeviceError::PowerLoss { index });
        }
        self.io_index += 1;
        let rate = match mode {
            Mode::Read => self.plan.read_error_rate,
            Mode::Write => self.plan.write_error_rate,
        };
        // The draw happens whenever the knob is armed — targeting only
        // filters the outcome — so adding a target range never shifts
        // the random stream seen by other IOs.
        if rate > 0.0 && self.next_unit() < rate && self.targeted(offset, len) {
            if self.sink_enabled {
                self.sink.add(
                    match mode {
                        Mode::Read => CounterId::InjectedReadFaults,
                        Mode::Write => CounterId::InjectedWriteFaults,
                    },
                    1,
                );
            }
            return Err(DeviceError::Injected {
                kind: FailureKind::Transient,
                index,
            });
        }
        let mut extra = 0u64;
        if self.plan.latency_spike_rate > 0.0
            && self.plan.latency_spike_ns > 0
            && self.next_unit() < self.plan.latency_spike_rate
        {
            extra += self.plan.latency_spike_ns;
            if self.sink_enabled {
                self.sink.add(CounterId::InjectedLatencySpikes, 1);
            }
        }
        if let Some(sc) = &self.plan.stuck_channel {
            if sc.hits(offset) {
                extra += sc.extra_ns;
                if self.sink_enabled {
                    self.sink.add(CounterId::InjectedLatencySpikes, 1);
                }
            }
        }
        Ok(extra)
    }
}

impl<D: BlockDevice> BlockDevice for FaultyDevice<D> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.capacity_bytes()
    }

    fn read(&mut self, offset: u64, len: u64) -> Result<Duration> {
        if !self.armed {
            return self.inner.read(offset, len);
        }
        // Malformed requests fail as such before consuming an arrival
        // index, exactly as they would on the bare device.
        self.check(offset, len)?;
        let extra = self.decide(Mode::Read, offset, len)?;
        let rt = self.inner.read(offset, len)?;
        if extra == 0 {
            return Ok(rt);
        }
        // A spike stalls the device: the clock advances through it
        // (and background work may run, as in any stall).
        let spike = Duration::from_nanos(extra);
        self.inner.idle(spike);
        Ok(rt + spike)
    }

    fn write(&mut self, offset: u64, len: u64) -> Result<Duration> {
        if !self.armed {
            return self.inner.write(offset, len);
        }
        self.check(offset, len)?;
        let extra = self.decide(Mode::Write, offset, len)?;
        let rt = self.inner.write(offset, len)?;
        if extra == 0 {
            return Ok(rt);
        }
        let spike = Duration::from_nanos(extra);
        self.inner.idle(spike);
        Ok(rt + spike)
    }

    fn idle(&mut self, d: Duration) {
        self.inner.idle(d);
    }

    fn now(&self) -> Duration {
        self.inner.now()
    }

    fn io_queue(&mut self) -> Option<&mut dyn IoQueue> {
        if self.inner.io_queue().is_some() {
            Some(self)
        } else {
            None
        }
    }

    fn io_queue_ref(&self) -> Option<&dyn IoQueue> {
        if self.inner.io_queue_ref().is_some() {
            Some(self)
        } else {
            None
        }
    }

    fn take_async_error(&mut self) -> Option<std::io::Error> {
        self.inner.take_async_error()
    }

    fn set_sink(&mut self, sink: SinkHandle) {
        self.sink_enabled = sink.is_enabled();
        self.inner.set_sink(sink.clone());
        self.sink = sink;
    }

    fn recover(&mut self) -> Result<uflip_ftl::RecoveryReport> {
        self.crashed = None;
        self.inner.recover()
    }

    // Snapshots are deliberately NOT forwarded (the defaults report
    // "unsupported"): a restore would rewind the backend without
    // rewinding the fault stream or arrival counter, silently changing
    // which IOs get faulted. Snapshot the bare device before wrapping
    // if both capabilities are needed.

    fn fork(&self) -> Option<Box<dyn BlockDevice + Send>> {
        let inner = self.inner.fork()?;
        Some(Box::new(FaultyDevice {
            inner,
            plan: self.plan.clone(),
            armed: self.armed,
            rng: self.rng,
            io_index: self.io_index,
            crashed: self.crashed,
            sink: self.sink.clone(),
            sink_enabled: self.sink_enabled,
        }))
    }
}

/// The queued fault path: arrival decisions happen at `submit` (the
/// same decision the synchronous path makes), latency spikes delay the
/// IO's submission instant, and a crash tears every in-flight IO —
/// `poll` reports nothing after power loss.
impl<D: BlockDevice> IoQueue for FaultyDevice<D> {
    fn queue_depth(&self) -> u32 {
        self.inner.io_queue_ref().map_or(1, |q| q.queue_depth())
    }

    fn set_queue_depth(&mut self, depth: u32) -> Result<()> {
        match self.inner.io_queue() {
            Some(q) => q.set_queue_depth(depth),
            None => Ok(()),
        }
    }

    fn in_flight(&self) -> usize {
        if self.crashed.is_some() {
            return 0;
        }
        self.inner.io_queue_ref().map_or(0, |q| q.in_flight())
    }

    fn submit(&mut self, io: &IoRequest, at: Duration) -> Result<Token> {
        if !self.armed {
            return self
                .inner
                .io_queue()
                .ok_or(DeviceError::Internal("submit on a backend without a queue"))?
                .submit(io, at);
        }
        if let Some(index) = self.crashed {
            return Err(DeviceError::PowerLoss { index });
        }
        // QueueFull storm: back-pressure, not failure — no arrival
        // index, no draw. Only reject when the backend actually has
        // in-flight IOs to poll, preserving the executor invariant
        // that a full queue can always retire a completion.
        if let Some(w) = &self.plan.queue_full_storm {
            if w.contains(self.io_index) {
                let q = self
                    .inner
                    .io_queue()
                    .ok_or(DeviceError::Internal("submit on a backend without a queue"))?;
                if q.in_flight() > 0 {
                    let depth = q.queue_depth();
                    if self.sink_enabled {
                        self.sink.add(CounterId::QueueFullRejections, 1);
                    }
                    return Err(DeviceError::QueueFull { depth });
                }
            }
        }
        self.check(io.offset, io.size)?;
        let extra = self.decide(io.mode, io.offset, io.size)?;
        // A spike delays the IO's arrival at the backend. Virtual-time
        // backends prefer non-decreasing submission instants; spikes
        // are rare perturbations of exactly the kind wall-clock queues
        // already tolerate (see `crate::queue`).
        let at = at + Duration::from_nanos(extra);
        self.inner
            .io_queue()
            .ok_or(DeviceError::Internal("submit on a backend without a queue"))?
            .submit(io, at)
    }

    fn next_completion(&self) -> Option<Duration> {
        if self.crashed.is_some() {
            return None;
        }
        self.inner.io_queue_ref().and_then(|q| q.next_completion())
    }

    fn poll(&mut self) -> Option<(Token, Duration)> {
        if self.crashed.is_some() {
            return None;
        }
        self.inner.io_queue()?.poll()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem_device::MemDevice;

    const MB: u64 = 1024 * 1024;

    fn mem() -> MemDevice {
        MemDevice::new(4 * MB, Duration::from_micros(100), 0)
    }

    #[test]
    fn empty_plan_is_disarmed_and_transparent() {
        let plan = FaultPlan::default();
        assert!(!plan.is_armed());
        let mut bare = mem();
        let mut faulty = FaultyDevice::new(mem(), plan);
        for i in 0..20u64 {
            let a = bare.write(i * 512, 512).unwrap();
            let b = faulty.write(i * 512, 512).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(bare.now(), faulty.now());
        assert_eq!(faulty.io_index(), 0, "disarmed plans never count IOs");
    }

    #[test]
    fn equal_seeds_inject_identical_sequences() {
        let plan = FaultPlan::transient_reads(0xFA17, 0.3);
        let mut a = FaultyDevice::new(mem(), plan.clone());
        let mut b = FaultyDevice::new(mem(), plan);
        let outcomes = |d: &mut FaultyDevice<MemDevice>| -> Vec<bool> {
            (0..200u64)
                .map(|i| d.read(i % 64 * 512, 512).is_ok())
                .collect()
        };
        let oa = outcomes(&mut a);
        let ob = outcomes(&mut b);
        assert_eq!(oa, ob);
        assert!(oa.iter().any(|ok| !ok), "a 30% rate must fire in 200 IOs");
        assert!(oa.iter().any(|ok| *ok), "and must not fire always");
    }

    #[test]
    fn injected_errors_classify_transient() {
        let plan = FaultPlan::transient_reads(1, 1.0);
        let mut d = FaultyDevice::new(mem(), plan);
        let e = d.read(0, 512).unwrap_err();
        assert!(matches!(
            e,
            DeviceError::Injected {
                kind: FailureKind::Transient,
                index: 0
            }
        ));
        assert!(e.is_transient());
        // Writes are unaffected by a read-only error rate.
        assert!(d.write(0, 512).is_ok());
    }

    #[test]
    fn target_ranges_scope_errors_without_shifting_the_stream() {
        let mut plan = FaultPlan::transient_reads(7, 1.0);
        plan.target_lbas = vec![LbaRange { start: 0, end: 8 }];
        let mut d = FaultyDevice::new(mem(), plan);
        assert!(d.read(0, 512).is_err(), "inside the range");
        assert!(d.read(64 * 512, 512).is_ok(), "outside the range");
        assert!(d.read(7 * 512, 1024).is_err(), "overlap counts");
    }

    #[test]
    fn latency_spikes_add_and_advance_the_clock() {
        let plan = FaultPlan {
            seed: 3,
            latency_spike_rate: 1.0,
            latency_spike_ns: 5_000_000,
            ..FaultPlan::default()
        };
        let mut d = FaultyDevice::new(mem(), plan);
        let rt = d.read(0, 512).unwrap();
        assert_eq!(rt, Duration::from_micros(100) + Duration::from_millis(5));
        assert_eq!(d.now(), rt, "the clock advances through the spike");
    }

    #[test]
    fn stuck_channel_is_deterministic() {
        let plan = FaultPlan {
            seed: 9,
            stuck_channel: Some(StuckChannel {
                channel: 1,
                channels: 4,
                stripe_bytes: 4096,
                extra_ns: 1_000_000,
            }),
            ..FaultPlan::default()
        };
        let mut d = FaultyDevice::new(mem(), plan);
        let fast = d.read(0, 512).unwrap(); // stripe 0 -> channel 0
        let slow = d.read(4096, 512).unwrap(); // stripe 1 -> channel 1
        assert_eq!(fast, Duration::from_micros(100));
        assert_eq!(slow, Duration::from_micros(100) + Duration::from_millis(1));
    }

    #[test]
    fn power_loss_fails_everything_until_recovery() {
        let plan = FaultPlan::power_loss_at(0, 2);
        let mut d = FaultyDevice::new(mem(), plan);
        assert!(d.write(0, 512).is_ok());
        assert!(d.write(512, 512).is_ok());
        let e = d.write(1024, 512).unwrap_err();
        assert!(matches!(e, DeviceError::PowerLoss { index: 2 }));
        assert!(d.crashed());
        assert!(
            matches!(d.read(0, 512), Err(DeviceError::PowerLoss { .. })),
            "every IO fails while crashed"
        );
        d.recover().unwrap();
        assert!(!d.crashed());
        assert!(d.read(0, 512).is_ok());
        // The power-loss index is behind the arrival counter now, so
        // the device does not crash again.
        assert!(d.write(2048, 512).is_ok());
    }

    #[test]
    fn plan_json_round_trips_and_validates() {
        let plan = FaultPlan {
            seed: 42,
            read_error_rate: 0.01,
            queue_full_storm: Some(IoWindow { start: 10, end: 20 }),
            power_loss_at: Some(100),
            ..FaultPlan::default()
        };
        let text = plan.to_json();
        let back: FaultPlan = serde_json::from_str(&text).unwrap();
        assert_eq!(plan, back);
        assert!(back.validate().is_ok());
        let bad = FaultPlan {
            read_error_rate: 1.5,
            ..FaultPlan::default()
        };
        assert!(bad.validate().is_err());
        // Sparse documents deserialize with defaults.
        let sparse: FaultPlan = serde_json::from_str(r#"{"seed": 7}"#).unwrap();
        assert_eq!(sparse.seed, 7);
        assert!(!sparse.is_armed());
    }

    #[test]
    fn malformed_requests_do_not_consume_arrival_indices() {
        let plan = FaultPlan::transient_reads(5, 0.5);
        let mut d = FaultyDevice::new(mem(), plan);
        assert!(matches!(
            d.read(100, 512),
            Err(DeviceError::Unaligned { .. })
        ));
        assert_eq!(d.io_index(), 0);
    }
}
