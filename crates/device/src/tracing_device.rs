//! [`TracingDevice`]: a transparent capture decorator over any
//! [`BlockDevice`].
//!
//! Wraps a backend and records every IO issued to it — through the
//! synchronous `read`/`write` path *and* through the NCQ-style
//! [`IoQueue`] path — as a [`uflip_trace::Trace`]. Transparency is the
//! contract: the wrapper forwards every call unchanged and computes
//! its records purely from what the backend already reports (response
//! times, the virtual clock, queue occupancy), so a traced run is
//! bit-identical to an untraced one. `tests/trace_replay.rs` asserts
//! this against `SimDevice`.
//!
//! Capture model (mirrors what Flashmon-style kernel tracers record on
//! real flash stacks): one [`uflip_trace::TraceRecord`] per IO with op
//! kind, LBA, sector count, submit/complete timestamps on the
//! backend's clock, and the queue depth at submission. On the
//! synchronous path the completion is known when the call returns; on
//! the queued path the record is opened at `submit` and its completion
//! filled in by `poll`.

use crate::block_device::BlockDevice;
use crate::queue::{IoQueue, Token};
use crate::Result;
use std::time::Duration;
use uflip_patterns::IoRequest;
use uflip_trace::{Trace, TraceRecord};

/// A block device decorator that records every IO into a
/// [`Trace`].
#[derive(Debug)]
pub struct TracingDevice<D: BlockDevice> {
    inner: D,
    trace: Trace,
    /// Open queued IOs: token → index of the record awaiting its
    /// completion time.
    pending: Vec<(Token, usize)>,
}

impl<D: BlockDevice> TracingDevice<D> {
    /// Wrap a device; the trace inherits its name and starts with the
    /// label `capture`.
    pub fn new(inner: D) -> Self {
        let trace = Trace::new(inner.name(), "capture");
        TracingDevice {
            inner,
            trace,
            pending: Vec::new(),
        }
    }

    /// Set the trace's workload label (builder style).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.trace.label = label.into();
        self
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the wrapped device (e.g. to prepare state
    /// without recording — pair with [`TracingDevice::clear`]).
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// The trace captured so far. Queued IOs that have not been polled
    /// yet still carry `complete_ns == submit_ns`.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Drop all records captured so far (keeps device and label) —
    /// call after preparation phases that should not appear in the
    /// trace.
    pub fn clear(&mut self) {
        self.trace.records.clear();
        self.pending.clear();
    }

    /// Unwrap into the device and the captured trace.
    pub fn into_parts(self) -> (D, Trace) {
        (self.inner, self.trace)
    }

    fn record_sync(
        &mut self,
        op: uflip_patterns::Mode,
        offset: u64,
        len: u64,
        submit: Duration,
        rt: Duration,
    ) {
        let submit_ns = submit.as_nanos() as u64;
        self.trace.push(TraceRecord {
            op,
            lba: offset / 512,
            sectors: (len / 512) as u32,
            submit_ns,
            complete_ns: submit_ns + rt.as_nanos() as u64,
            queue_depth: 1,
        });
    }
}

impl<D: BlockDevice> BlockDevice for TracingDevice<D> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.capacity_bytes()
    }

    fn read(&mut self, offset: u64, len: u64) -> Result<Duration> {
        let submit = self.inner.now();
        let rt = self.inner.read(offset, len)?;
        self.record_sync(uflip_patterns::Mode::Read, offset, len, submit, rt);
        Ok(rt)
    }

    fn write(&mut self, offset: u64, len: u64) -> Result<Duration> {
        let submit = self.inner.now();
        let rt = self.inner.write(offset, len)?;
        self.record_sync(uflip_patterns::Mode::Write, offset, len, submit, rt);
        Ok(rt)
    }

    fn idle(&mut self, d: Duration) {
        self.inner.idle(d);
    }

    fn now(&self) -> Duration {
        self.inner.now()
    }

    fn io_queue(&mut self) -> Option<&mut dyn IoQueue> {
        if self.inner.io_queue().is_some() {
            Some(self)
        } else {
            None
        }
    }

    fn io_queue_ref(&self) -> Option<&dyn IoQueue> {
        if self.inner.io_queue_ref().is_some() {
            Some(self)
        } else {
            None
        }
    }

    fn take_async_error(&mut self) -> Option<std::io::Error> {
        self.inner.take_async_error()
    }

    fn set_sink(&mut self, sink: uflip_obs::SinkHandle) {
        self.inner.set_sink(sink);
    }

    // Snapshots are deliberately NOT forwarded to the backend (the
    // defaults report "unsupported"): restoring would rewind the
    // inner device's virtual clock mid-capture, producing a trace
    // whose timestamps go backwards — a workload that corresponds to
    // no real capture and that the submit-ordered replay engine
    // rejects. A traced plan execution therefore falls back to
    // re-enforcing state at resets, which records honestly. Snapshot
    // the bare device (`inner()`) before wrapping if both are needed.
}

/// The queued capture path: every call forwards to the backend's own
/// queue; `submit` opens a record, `poll` closes it.
impl<D: BlockDevice> IoQueue for TracingDevice<D> {
    fn queue_depth(&self) -> u32 {
        self.inner.io_queue_ref().map_or(1, |q| q.queue_depth())
    }

    fn set_queue_depth(&mut self, depth: u32) -> Result<()> {
        match self.inner.io_queue() {
            Some(q) => q.set_queue_depth(depth),
            None => Ok(()),
        }
    }

    fn in_flight(&self) -> usize {
        self.inner.io_queue_ref().map_or(0, |q| q.in_flight())
    }

    fn submit(&mut self, io: &IoRequest, at: Duration) -> Result<Token> {
        let queue = self.inner.io_queue().ok_or(crate::DeviceError::Internal(
            "submit on a backend without a queue",
        ))?;
        let token = queue.submit(io, at)?;
        let depth_now = queue.in_flight() as u32;
        let submit_ns = at.as_nanos() as u64;
        let idx = self.trace.records.len();
        self.trace.push(TraceRecord {
            op: io.mode,
            lba: io.offset / 512,
            sectors: (io.size / 512) as u32,
            submit_ns,
            complete_ns: submit_ns, // placeholder until poll
            queue_depth: depth_now,
        });
        self.pending.push((token, idx));
        Ok(token)
    }

    fn next_completion(&self) -> Option<Duration> {
        self.inner.io_queue_ref().and_then(|q| q.next_completion())
    }

    fn poll(&mut self) -> Option<(Token, Duration)> {
        let (token, completion) = self.inner.io_queue()?.poll()?;
        if let Some(pos) = self.pending.iter().position(|(t, _)| *t == token) {
            let (_, idx) = self.pending.swap_remove(pos);
            self.trace.records[idx].complete_ns = completion.as_nanos() as u64;
        }
        Some((token, completion))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem_device::MemDevice;
    use uflip_patterns::Mode;

    const MB: u64 = 1024 * 1024;

    fn traced_mem() -> TracingDevice<MemDevice> {
        TracingDevice::new(MemDevice::new(4 * MB, Duration::from_micros(100), 0))
    }

    #[test]
    fn sync_path_records_op_location_and_timing() {
        let mut d = traced_mem().with_label("smoke");
        d.write(32 * 1024, 4096).unwrap();
        d.idle(Duration::from_millis(1));
        d.read(0, 512).unwrap();
        let t = d.trace();
        assert_eq!(t.label, "smoke");
        assert_eq!(t.device, "mem");
        assert_eq!(t.len(), 2);
        let w = &t.records[0];
        assert_eq!((w.op, w.lba, w.sectors), (Mode::Write, 64, 8));
        assert_eq!((w.submit_ns, w.complete_ns), (0, 100_000));
        assert_eq!(w.queue_depth, 1);
        let r = &t.records[1];
        assert_eq!(r.op, Mode::Read);
        assert_eq!(r.submit_ns, 1_100_000, "idle advanced the clock");
        assert_eq!(r.latency_ns(), 100_000);
    }

    #[test]
    fn forwarding_is_transparent() {
        let mut traced = traced_mem();
        let mut bare = MemDevice::new(4 * MB, Duration::from_micros(100), 0);
        let a = traced.write(0, 512).unwrap();
        let b = bare.write(0, 512).unwrap();
        assert_eq!(a, b);
        assert_eq!(traced.now(), bare.now());
        assert_eq!(traced.capacity_bytes(), bare.capacity_bytes());
        assert_eq!(traced.inner().writes(), 1);
    }

    #[test]
    fn errors_are_forwarded_and_not_recorded() {
        let mut d = traced_mem();
        assert!(d.read(0, 100).is_err(), "unaligned");
        assert!(d.write(3 * MB, 2 * MB).is_err(), "out of range");
        assert!(d.trace().is_empty(), "failed IOs leave no record");
    }

    #[test]
    fn queueless_backends_expose_no_queue() {
        let mut d = traced_mem();
        assert!(d.io_queue().is_none());
        assert!(d.io_queue_ref().is_none());
        assert_eq!(IoQueue::queue_depth(&d), 1);
        assert_eq!(d.in_flight(), 0);
        assert!(IoQueue::next_completion(&d).is_none());
        assert!(d.poll().is_none());
    }

    #[test]
    fn clear_discards_preparation_records() {
        let mut d = traced_mem();
        d.write(0, 512).unwrap();
        d.clear();
        assert!(d.trace().is_empty());
        d.read(0, 512).unwrap();
        assert_eq!(d.trace().len(), 1);
        let (dev, trace) = d.into_parts();
        assert_eq!(dev.reads(), 1);
        assert_eq!(trace.len(), 1);
    }
}
