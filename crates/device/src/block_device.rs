//! The timed block-device abstraction the benchmark drives.

use crate::Result;
use std::time::Duration;

/// A block device under benchmark.
///
/// uFLIP measures the **response time of each submitted IO** (paper
/// §3.2, design principle 1); `read` and `write` therefore return the
/// IO's response time directly. Simulated devices compute it on a
/// virtual clock; real backends measure wall-clock time around a
/// synchronous direct IO.
///
/// `idle` informs the device that the host intentionally waited
/// (pause/burst timing functions, inter-run pauses): simulated devices
/// use it to run background reclamation, real backends actually sleep.
pub trait BlockDevice {
    /// Device name for reports.
    fn name(&self) -> &str;

    /// Usable capacity in bytes.
    fn capacity_bytes(&self) -> u64;

    /// Synchronously read `len` bytes at byte `offset`; returns the
    /// response time. Offsets and lengths must be 512-byte aligned (the
    /// paper's LBA granularity — `IOShift` is expressed in 512 B units).
    fn read(&mut self, offset: u64, len: u64) -> Result<Duration>;

    /// Synchronously write `len` bytes at byte `offset`; returns the
    /// response time.
    fn write(&mut self, offset: u64, len: u64) -> Result<Duration>;

    /// Host idle time between IOs or runs.
    fn idle(&mut self, d: Duration);

    /// Device-observed elapsed time since creation (virtual for
    /// simulations, wall-clock for real backends).
    fn now(&self) -> Duration;

    /// The device's NCQ-style submission queue, if it can serve
    /// overlapping IOs (see [`crate::queue::IoQueue`]). Simulated
    /// devices schedule onto virtual-time channel tracks; real devices
    /// serve the same interface on a wall clock through a threaded
    /// worker pool ([`crate::ThreadedIoQueue`]). Devices that return
    /// `None` (the default) are driven by serial interleaving instead.
    fn io_queue(&mut self) -> Option<&mut dyn crate::queue::IoQueue> {
        None
    }

    /// Shared (read-only) view of the same queue. Decorators such as
    /// [`crate::TracingDevice`] need it to answer the `&self` queue
    /// questions (`queue_depth`, `in_flight`, `next_completion`)
    /// without exclusive access; implementations that override
    /// [`BlockDevice::io_queue`] must override this too, returning the
    /// same object.
    fn io_queue_ref(&self) -> Option<&dyn crate::queue::IoQueue> {
        None
    }

    /// Attach an observability sink (see `uflip_obs`). Implementations
    /// forward the handle to their FTL / queue engine so NAND, merge,
    /// host-IO and queue events flow into it.
    ///
    /// **Overhead guarantee**: with the default no-op sink attached (or
    /// none at all), the instrumentation cost is a single cached `bool`
    /// test per event site — no atomics, no allocation — and response
    /// times are bit-identical to an uninstrumented build. Sinks
    /// observe; they must never influence timing. The default drops the
    /// handle (devices without instrumentation).
    fn set_sink(&mut self, sink: uflip_obs::SinkHandle) {
        let _ = sink;
    }

    /// Take the device's parked asynchronous IO error, if any. Queued
    /// backends have no error channel in `poll` (a completion is a
    /// token and a time), so a failed queued IO completes normally and
    /// parks its error; harnesses call this after a queued run to
    /// learn about failures in the final in-flight window, which would
    /// otherwise surface on the *next* run's first submit — or never.
    /// Devices without an asynchronous engine return `None` (the
    /// default).
    fn take_async_error(&mut self) -> Option<std::io::Error> {
        None
    }

    /// Whether this device supports the full snapshot capability:
    /// [`BlockDevice::snapshot_state`] returns `Some`,
    /// [`BlockDevice::restore_state`] accepts that state, and
    /// [`BlockDevice::fork`] returns `Some`. A cheap probe — callers
    /// (e.g. the sharded plan executor) check this instead of
    /// materializing and discarding a deep copy just to learn the
    /// answer. The default is `false`; implementations that return
    /// `true` must implement all three hooks.
    fn snapshot_capable(&self) -> bool {
        false
    }

    /// Capture the device's complete state — FTL mapping tables, NAND
    /// array (wear, page states, statistics), virtual clock, quirk
    /// detectors and queue engine — as an opaque deep copy, or `None`
    /// when the device cannot snapshot (the default; real hardware
    /// backends have no way to copy a flash chip).
    ///
    /// See [`crate::snapshot`] for why this exists: it turns uFLIP's
    /// expensive §4.1 state enforcement into a one-time cost.
    fn snapshot_state(&self) -> Option<Box<dyn crate::snapshot::DeviceState>> {
        None
    }

    /// Restore a state previously captured by
    /// [`BlockDevice::snapshot_state`] **on the same concrete device
    /// type**. Rewinds everything the snapshot covers, including the
    /// virtual clock. Errors with
    /// [`crate::DeviceError::SnapshotUnsupported`] (default) or
    /// [`crate::DeviceError::SnapshotMismatch`] (wrong device type).
    fn restore_state(&mut self, state: &dyn crate::snapshot::DeviceState) -> Result<()> {
        let _ = state;
        Err(crate::DeviceError::SnapshotUnsupported)
    }

    /// Deep-copy the whole device into an independent boxed instance
    /// (state *and* configuration), or `None` when the device cannot
    /// be duplicated (the default). Forks are what lets a plan
    /// executor run independent plan segments on worker threads.
    fn fork(&self) -> Option<Box<dyn BlockDevice + Send>> {
        None
    }

    /// Recover the device after a power loss: drop whatever was in
    /// flight, discard volatile state and rebuild durable mappings from
    /// ground truth (simulated devices remount their FTL — see
    /// [`uflip_ftl::Ftl::recover`]). Recovery is untimed: it models the
    /// mount-time work a controller does before serving IOs again, not
    /// an IO being measured. Devices with no volatile state (the
    /// default) recover trivially.
    fn recover(&mut self) -> Result<uflip_ftl::RecoveryReport> {
        Ok(uflip_ftl::RecoveryReport::default())
    }

    /// Validate alignment and bounds (shared helper).
    fn check(&self, offset: u64, len: u64) -> Result<()> {
        if len == 0 {
            return Err(crate::DeviceError::ZeroLength);
        }
        if !offset.is_multiple_of(512) || !len.is_multiple_of(512) {
            return Err(crate::DeviceError::Unaligned { offset, len });
        }
        if offset + len > self.capacity_bytes() {
            return Err(crate::DeviceError::OutOfRange {
                offset,
                len,
                capacity: self.capacity_bytes(),
            });
        }
        Ok(())
    }
}

/// Boxed devices are devices: every method forwards to the boxed
/// implementation (defaults would silently disable queues, snapshots
/// and recovery on `Box<dyn BlockDevice>`). This is what lets
/// decorators like [`crate::faults::FaultyDevice`] wrap the boxed
/// trait objects harnesses pass around.
impl<T: BlockDevice + ?Sized> BlockDevice for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn capacity_bytes(&self) -> u64 {
        (**self).capacity_bytes()
    }

    fn read(&mut self, offset: u64, len: u64) -> Result<Duration> {
        (**self).read(offset, len)
    }

    fn write(&mut self, offset: u64, len: u64) -> Result<Duration> {
        (**self).write(offset, len)
    }

    fn idle(&mut self, d: Duration) {
        (**self).idle(d)
    }

    fn now(&self) -> Duration {
        (**self).now()
    }

    fn io_queue(&mut self) -> Option<&mut dyn crate::queue::IoQueue> {
        (**self).io_queue()
    }

    fn io_queue_ref(&self) -> Option<&dyn crate::queue::IoQueue> {
        (**self).io_queue_ref()
    }

    fn set_sink(&mut self, sink: uflip_obs::SinkHandle) {
        (**self).set_sink(sink)
    }

    fn take_async_error(&mut self) -> Option<std::io::Error> {
        (**self).take_async_error()
    }

    fn snapshot_capable(&self) -> bool {
        (**self).snapshot_capable()
    }

    fn snapshot_state(&self) -> Option<Box<dyn crate::snapshot::DeviceState>> {
        (**self).snapshot_state()
    }

    fn restore_state(&mut self, state: &dyn crate::snapshot::DeviceState) -> Result<()> {
        (**self).restore_state(state)
    }

    fn fork(&self) -> Option<Box<dyn BlockDevice + Send>> {
        (**self).fork()
    }

    fn recover(&mut self) -> Result<uflip_ftl::RecoveryReport> {
        (**self).recover()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceError;

    struct Fixed;
    impl BlockDevice for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn capacity_bytes(&self) -> u64 {
            4096
        }
        fn read(&mut self, _o: u64, _l: u64) -> Result<Duration> {
            Ok(Duration::ZERO)
        }
        fn write(&mut self, _o: u64, _l: u64) -> Result<Duration> {
            Ok(Duration::ZERO)
        }
        fn idle(&mut self, _d: Duration) {}
        fn now(&self) -> Duration {
            Duration::ZERO
        }
    }

    #[test]
    fn check_validates_alignment_and_bounds() {
        let d = Fixed;
        assert!(d.check(0, 512).is_ok());
        assert!(d.check(512, 3584).is_ok());
        assert!(matches!(d.check(0, 0), Err(DeviceError::ZeroLength)));
        assert!(matches!(
            d.check(100, 512),
            Err(DeviceError::Unaligned { .. })
        ));
        assert!(matches!(
            d.check(0, 100),
            Err(DeviceError::Unaligned { .. })
        ));
        assert!(matches!(
            d.check(4096, 512),
            Err(DeviceError::OutOfRange { .. })
        ));
        assert!(matches!(
            d.check(3584, 1024),
            Err(DeviceError::OutOfRange { .. })
        ));
    }
}
