//! The submission/completion queue interface ([`IoQueue`]).
//!
//! uFLIP's parallelism micro-benchmark (§3.2, Hint 7) asks how devices
//! behave when multiple IOs are outstanding at once. The synchronous
//! [`crate::BlockDevice`] interface cannot express that: each
//! `read`/`write` call completes before the next begins, so any overlap
//! across the flash channels of the backing
//! [`uflip_nand::NandArray`] has to be *simulated* by the caller. This
//! module introduces the NCQ-style asynchronous interface that makes
//! overlap *emergent* instead:
//!
//! * [`IoQueue::submit`] hands the device an [`IoRequest`] together
//!   with its virtual submission time and returns a [`Token`];
//! * [`IoQueue::poll`] retires the earliest-completing in-flight IO,
//!   returning its token and absolute completion time;
//! * the configurable queue depth bounds how many IOs the device will
//!   hold concurrently — submissions beyond it fail with
//!   [`crate::DeviceError::QueueFull`] until a completion is polled.
//!
//! ## Virtual time vs wall clock
//!
//! Simulated devices have no wall clock; *the submitter owns virtual
//! time*. `submit` therefore takes the submission instant explicitly
//! (`at`), and submissions should be non-decreasing in `at` — the
//! executor in `uflip-core` drives every producing process through a
//! single virtual-time event loop, so this holds by construction.
//! Completion times returned by `poll` are on the same clock.
//!
//! Real-device queues ([`crate::ThreadedIoQueue`]) put the same
//! interface on a wall clock, where *the device owns time* and three
//! relaxations apply (callers in `uflip_core` tolerate all three):
//!
//! * `at` is an *earliest start*, clamped to "now" when already past,
//!   and need **not** be non-decreasing across submissions — a
//!   completion observed "in the past" relative to the event loop may
//!   release a process whose next IO predates a future-dated one;
//! * `next_completion` reports only completions that have *already
//!   happened*: `None` with IOs in flight means "nothing observed
//!   yet", not "queue empty" — keep submitting;
//! * `poll` may **block** until a completion arrives (there is no
//!   virtual clock to advance past an in-flight IO); it still returns
//!   `None` only when nothing is in flight.
//!
//! ## What overlaps and what does not
//!
//! An implementation schedules each IO onto the busy tracks of the
//! channels its flash operations actually touched (see
//! [`uflip_ftl::Ftl::channel_busy_ns`]): IOs on disjoint channels
//! overlap, IOs contending for a channel serialize, and a queue depth
//! of 1 degenerates to the synchronous path exactly. FTL *state*
//! transitions (mapping updates, garbage collection) still happen in
//! submission order — what the queue reorders and overlaps is timing,
//! which is precisely what the black-box benchmark measures.
//!
//! ## Observability
//!
//! Queue implementations emit submission/completion/rejection counters
//! and per-channel busy intervals into an attached `uflip_obs` sink
//! (see `BlockDevice::set_sink`). The contract is the same as
//! everywhere in the stack: with the default no-op sink the cost is
//! one cached `bool` test per event site — no atomics, no allocation —
//! and every completion time is bit-identical to an uninstrumented
//! run. A sink can observe a queue; it can never steer it.

use crate::Result;
use std::time::Duration;
use uflip_patterns::IoRequest;

/// Handle to one in-flight IO, returned by [`IoQueue::submit`] and
/// redeemed by [`IoQueue::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(u64);

impl Token {
    /// Construct from a raw sequence number (implementation helper).
    pub fn from_raw(raw: u64) -> Self {
        Token(raw)
    }

    /// The raw sequence number: tokens issued by one queue count up
    /// from 0 in submission order.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// An NCQ-style submission/completion queue over a block device.
///
/// Obtained from [`crate::BlockDevice::io_queue`]; devices that cannot
/// serve queued IOs (real synchronous backends, trivial test devices)
/// simply return `None` there and callers fall back to synchronous
/// interleaving.
pub trait IoQueue {
    /// Maximum number of in-flight IOs the device accepts.
    fn queue_depth(&self) -> u32;

    /// Reconfigure the queue depth (clamped to ≥ 1). Only legal while
    /// no IOs are in flight: implementations return
    /// [`crate::DeviceError::DepthChangeInFlight`] otherwise, leaving
    /// the depth — and the in-flight IOs — untouched.
    fn set_queue_depth(&mut self, depth: u32) -> Result<()>;

    /// Number of IOs currently in flight.
    fn in_flight(&self) -> usize;

    /// Submit an IO at virtual time `at` (which must be ≥ every
    /// earlier submission's `at`). Returns the IO's token, or
    /// [`crate::DeviceError::QueueFull`] when `in_flight()` has reached
    /// the queue depth — poll a completion and retry.
    fn submit(&mut self, io: &IoRequest, at: Duration) -> Result<Token>;

    /// Completion time of the earliest-completing in-flight IO, if any
    /// — lets a scheduler decide whether to submit more work or retire
    /// completions without popping. Wall-clock queues answer only for
    /// IOs that have already finished (see the module docs).
    fn next_completion(&self) -> Option<Duration>;

    /// Retire the earliest-completing in-flight IO, returning its
    /// token and absolute completion time. `None` when nothing is in
    /// flight. Wall-clock queues block here until a completion
    /// arrives (see the module docs).
    fn poll(&mut self) -> Option<(Token, Duration)>;

    /// Batch submit: hand the device `ios` in order, all at time `at`,
    /// pushing one token per accepted IO onto `tokens`. Stops — without
    /// error — at the first [`crate::DeviceError::QueueFull`] and
    /// returns how many IOs were accepted; the caller retires a
    /// completion and re-submits the remainder. Any other error aborts
    /// the batch after the accepted prefix.
    ///
    /// One virtual dispatch covers the whole wave: the default body
    /// calls `self.submit` statically on the implementing type, so
    /// event loops driving `&mut dyn IoQueue` pay the indirection once
    /// per wave instead of once per IO.
    fn submit_batch(
        &mut self,
        ios: &[IoRequest],
        at: Duration,
        tokens: &mut Vec<Token>,
    ) -> Result<usize> {
        let depth = self.queue_depth() as usize;
        for (accepted, io) in ios.iter().enumerate() {
            // A full queue is the steady state under back-pressure;
            // stop before `submit` so the hot path never builds (and
            // drops) a QueueFull error per IO.
            if self.in_flight() >= depth {
                return Ok(accepted);
            }
            match self.submit(io, at) {
                Ok(t) => tokens.push(t),
                Err(crate::DeviceError::QueueFull { .. }) => return Ok(accepted),
                Err(e) => return Err(e),
            }
        }
        Ok(ios.len())
    }

    /// Batch retire: pop every in-flight completion at or before
    /// `upto`, appending `(token, completion)` pairs in completion
    /// order, and return how many were retired. Wall-clock queues
    /// retire only completions that have already landed (their
    /// `next_completion` never reports future ones), so this never
    /// blocks.
    fn poll_upto(&mut self, upto: Duration, out: &mut Vec<(Token, Duration)>) -> usize {
        let mut n = 0;
        while let Some(done) = self.next_completion() {
            if done > upto {
                break;
            }
            // `next_completion` peeked a landed completion, so `poll`
            // returns it; if an implementation disagrees, stop rather
            // than panic.
            let Some((token, completion)) = self.poll() else {
                break;
            };
            out.push((token, completion));
            n += 1;
        }
        n
    }
}

/// Per-channel busy tracks: the scheduling core shared by queue
/// implementations.
///
/// Each channel has an absolute "free at" time. An IO that occupies a
/// set of channels starts at the latest of its submission time and the
/// free times of those channels, then pushes each occupied channel's
/// free time forward by the busy time it spent there. Elapsed device
/// time, queueing delay, and the collapse of stride-aligned patterns
/// onto a single channel all fall out of this bookkeeping.
#[derive(Debug, Clone)]
pub struct ChannelTracks {
    free_ns: Vec<u64>,
}

impl ChannelTracks {
    /// Tracks for `channels` channels (≥ 1), all free at time 0.
    pub fn new(channels: u32) -> Self {
        ChannelTracks {
            free_ns: vec![0; channels.max(1) as usize],
        }
    }

    /// Number of tracks.
    pub fn channels(&self) -> usize {
        self.free_ns.len()
    }

    /// Earliest start time for an IO submitted at `submit_ns` that
    /// occupies every channel where `busy_ns` is nonzero. An IO that
    /// occupies no channel (e.g. absorbed by a RAM write cache) starts
    /// at its submission time.
    pub fn start_ns(&self, submit_ns: u64, busy_ns: &[u64]) -> u64 {
        let mut start = submit_ns;
        for (ch, &busy) in busy_ns.iter().enumerate() {
            if busy > 0 {
                start = start.max(self.free_ns[ch]);
            }
        }
        start
    }

    /// Occupy channels from `start_ns`: each channel where `busy_ns` is
    /// nonzero becomes free at `start_ns + busy`.
    pub fn occupy(&mut self, start_ns: u64, busy_ns: &[u64]) {
        for (ch, &busy) in busy_ns.iter().enumerate() {
            if busy > 0 {
                self.free_ns[ch] = self.free_ns[ch].max(start_ns + busy);
            }
        }
    }

    /// Time at which every channel is free.
    pub fn all_free_ns(&self) -> u64 {
        self.free_ns.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_order_by_submission() {
        assert!(Token::from_raw(0) < Token::from_raw(1));
        assert_eq!(Token::from_raw(7).raw(), 7);
    }

    #[test]
    fn disjoint_channels_overlap() {
        let mut t = ChannelTracks::new(2);
        let a = [100, 0];
        let b = [0, 100];
        let s0 = t.start_ns(0, &a);
        t.occupy(s0, &a);
        let s1 = t.start_ns(0, &b);
        t.occupy(s1, &b);
        assert_eq!((s0, s1), (0, 0), "disjoint channels start together");
        assert_eq!(t.all_free_ns(), 100);
    }

    #[test]
    fn shared_channel_serializes() {
        let mut t = ChannelTracks::new(2);
        let a = [100, 0];
        let s0 = t.start_ns(0, &a);
        t.occupy(s0, &a);
        let s1 = t.start_ns(10, &a);
        t.occupy(s1, &a);
        assert_eq!(s1, 100, "same channel waits for the first IO");
        assert_eq!(t.all_free_ns(), 200);
    }

    #[test]
    fn channel_free_ios_start_at_submission() {
        let t = ChannelTracks::new(2);
        assert_eq!(t.start_ns(42, &[0, 0]), 42);
    }

    #[test]
    fn zero_channels_clamps_to_one() {
        let t = ChannelTracks::new(0);
        assert_eq!(t.channels(), 1);
    }
}
