//! [`ThreadedIoQueue`]: the asynchronous real-device IO engine.
//!
//! The simulated devices serve [`crate::IoQueue`] on a virtual clock;
//! real hardware needs actual concurrent submission. This module
//! provides it with a pool of worker threads issuing positioned
//! `pread`/`pwrite` (safe [`std::os::unix::fs::FileExt`], no `libc`)
//! on a shared [`Arc<File>`], a completion channel back to the
//! submitter, and NCQ-style admission: submissions past the configured
//! queue depth fail with [`crate::DeviceError::QueueFull`] until a
//! completion is polled, exactly like the simulated engine.
//!
//! ## Wall-clock semantics
//!
//! Unlike the virtual-time queues, *the device owns the clock here*:
//! every timestamp is wall time mapped onto the owning device's epoch
//! (the same epoch `BlockDevice::now` reports, so executor bookkeeping
//! stays on one clock). The differences callers must tolerate — the
//! `uflip_core` executor and replay engine do — are spelled out on
//! [`crate::IoQueue`]:
//!
//! * `submit(io, at)` treats `at` as *earliest start*: a worker holds
//!   the IO until the device clock reaches `at` (honoring pause/burst
//!   timing functions), and an `at` already in the past starts
//!   immediately. Submission times do **not** need to be
//!   non-decreasing: a completion that lands "in the past" relative to
//!   the event loop may release a process whose next IO predates an
//!   already-submitted future-dated IO.
//! * `next_completion` only knows about IOs that have *already*
//!   finished: `None` with IOs in flight means "nothing observed yet",
//!   not "nothing outstanding".
//! * `poll` blocks until a completion arrives when IOs are in flight
//!   (there is no virtual clock to advance past them).
//!
//! ## Error reporting
//!
//! `poll` has no error channel (a completion is a token and a time), so
//! a failed IO records its wall-clock completion like any other and
//! parks its [`std::io::Error`] in a FIFO; the next `submit` — or
//! direct calls to [`ThreadedIoQueue::take_error`] — surfaces them in
//! arrival order, one per call. *Every* concurrent failure is queued:
//! when two in-flight IOs fail, both errors report, not just the
//! first-observed one.
//!
//! ## Retries
//!
//! A [`RetrySpec`] (see [`ThreadedIoQueue::set_retry`]) makes workers
//! retry failed IOs in place with bounded exponential backoff — the
//! firmware-style retry loop real devices run below the host's view.
//! Each retry increments [`CounterId::IoRetries`] on the attached
//! sink; an IO that exhausts its budget parks its last error as usual.

use crate::queue::{IoQueue, Token};
use crate::Result;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fs::File;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use uflip_obs::{CounterId, SinkHandle};
use uflip_patterns::{IoRequest, Mode};

#[cfg(unix)]
use std::os::unix::fs::FileExt;

use crate::direct_io::AlignedBuf;

/// Upper bound on pool size: queue depths beyond this are still
/// admitted (NCQ bookkeeping), but at most this many IOs execute
/// concurrently — like a real device whose internal parallelism is
/// narrower than its command queue.
pub const MAX_WORKERS: usize = 64;

/// In-place retry budget for failed IOs, applied by the worker that
/// owns the IO: up to `max_retries` re-attempts with exponential
/// backoff (`backoff_base`, doubling, capped at `backoff_cap`) between
/// them. The default budget is zero retries — errors surface
/// immediately, the historical behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrySpec {
    /// Maximum number of re-attempts after the initial failure.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff.
    pub backoff_cap: Duration,
}

impl Default for RetrySpec {
    fn default() -> Self {
        RetrySpec {
            max_retries: 0,
            backoff_base: Duration::from_micros(200),
            backoff_cap: Duration::from_millis(10),
        }
    }
}

impl RetrySpec {
    /// Backoff before retry number `attempt` (1-based): base doubled
    /// per prior attempt, capped.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        self.backoff_base
            .saturating_mul(1u32 << shift)
            .min(self.backoff_cap)
    }
}

/// One unit of work handed to a worker thread.
struct Job {
    token: u64,
    mode: Mode,
    offset: u64,
    len: u64,
    /// Earliest start, relative to the device epoch.
    not_before: Duration,
    /// Write payload byte (varied per IO so content-aware firmware
    /// cannot dedup, mirroring the synchronous path).
    fill: u8,
    /// In-place retry budget for this IO.
    retry: RetrySpec,
}

/// A worker's report back to the submitter.
struct Completion {
    token: u64,
    /// Wall-clock completion, relative to the device epoch.
    done: Duration,
    result: std::io::Result<()>,
    /// Retries the worker spent before this outcome.
    retries: u32,
}

/// Completion-side state shared with `&self` accessors
/// (`next_completion` peeks from an immutable borrow, so the receiver
/// and the reorder heap live behind a mutex).
struct CompletionLane {
    done_rx: Receiver<Completion>,
    /// Completed but not yet polled, ordered by completion time.
    ready: BinaryHeap<Reverse<(u64, u64)>>,
    /// IO errors observed, in arrival order, parked until the next
    /// `submit` or `take_error` — every concurrent failure is kept.
    failed: VecDeque<std::io::Error>,
    /// Worker retries observed but not yet flushed to the sink.
    retries: u64,
}

impl CompletionLane {
    /// Move everything the workers have finished into the heap without
    /// blocking.
    fn drain(&mut self) {
        while let Ok(c) = self.done_rx.try_recv() {
            self.admit(c);
        }
    }

    fn admit(&mut self, c: Completion) {
        if let Err(e) = c.result {
            self.failed.push_back(e);
        }
        self.retries += u64::from(c.retries);
        self.ready
            .push(Reverse((c.done.as_nanos() as u64, c.token)));
    }
}

/// A threaded asynchronous submission/completion queue over a real
/// file or block device (see the module docs).
pub struct ThreadedIoQueue {
    file: Arc<File>,
    capacity: u64,
    epoch: Instant,
    depth: u32,
    in_flight: usize,
    next_token: u64,
    fill: u8,
    /// `None` only during teardown.
    job_tx: Option<Sender<Job>>,
    /// Shared tail of the job channel; workers take jobs one at a time.
    job_rx: Arc<Mutex<Receiver<Job>>>,
    done_tx: Sender<Completion>,
    lane: Mutex<CompletionLane>,
    workers: Vec<JoinHandle<()>>,
    /// Retry budget stamped onto every submitted job.
    retry: RetrySpec,
    /// Observability sink; never affects timing. No FTL behind a real
    /// device, so host-IO counters are emitted here at submission.
    sink: SinkHandle,
    /// Cached `sink.is_enabled()` so the no-op path costs one bool test.
    sink_enabled: bool,
}

impl std::fmt::Debug for ThreadedIoQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedIoQueue")
            .field("depth", &self.depth)
            .field("in_flight", &self.in_flight)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ThreadedIoQueue {
    /// Build a queue over `file`, serving offsets `< capacity`.
    /// `epoch` is the owning device's clock origin — completions are
    /// reported on it. Worker threads are spawned lazily on first
    /// submission, so an unused queue costs two channels.
    pub fn new(file: Arc<File>, capacity: u64, epoch: Instant) -> Self {
        let (job_tx, job_rx) = channel::<Job>();
        let (done_tx, done_rx) = channel::<Completion>();
        ThreadedIoQueue {
            file,
            capacity,
            epoch,
            depth: 1,
            in_flight: 0,
            next_token: 0,
            fill: 0xA5,
            job_tx: Some(job_tx),
            job_rx: Arc::new(Mutex::new(job_rx)),
            done_tx,
            lane: Mutex::new(CompletionLane {
                done_rx,
                ready: BinaryHeap::new(),
                failed: VecDeque::new(),
                retries: 0,
            }),
            workers: Vec::new(),
            retry: RetrySpec::default(),
            sink: SinkHandle::null(),
            sink_enabled: false,
        }
    }

    /// Attach an observability sink (queue and host-IO counters).
    pub fn set_sink(&mut self, sink: SinkHandle) {
        self.sink_enabled = sink.is_enabled();
        self.sink = sink;
    }

    /// Configure the in-place retry budget workers apply to every IO
    /// submitted from now on (see [`RetrySpec`]; the default budget is
    /// zero retries).
    pub fn set_retry(&mut self, retry: RetrySpec) {
        self.retry = retry;
    }

    /// Take the oldest parked asynchronous IO error, if any (see the
    /// module docs — failed IOs complete normally and park their
    /// errors here in arrival order; call repeatedly to drain them
    /// all).
    pub fn take_error(&mut self) -> Option<std::io::Error> {
        // A poisoned lane means a worker panicked mid-update; surface
        // that as the parked error instead of cascading the panic.
        let Ok(mut lane) = self.lane.lock() else {
            return Some(std::io::Error::other(
                "IO worker panicked; completion lane poisoned",
            ));
        };
        lane.drain();
        self.flush_retries(&mut lane);
        lane.failed.pop_front()
    }

    /// Flush worker-observed retries into the sink counter.
    fn flush_retries(&self, lane: &mut CompletionLane) {
        let n = std::mem::take(&mut lane.retries);
        if n > 0 && self.sink_enabled {
            self.sink.add(CounterId::IoRetries, n);
        }
    }

    /// Grow the worker pool to serve the current depth (capped at
    /// [`MAX_WORKERS`]).
    fn ensure_workers(&mut self) {
        let want = (self.depth as usize).min(MAX_WORKERS);
        while self.workers.len() < want {
            let file = Arc::clone(&self.file);
            let epoch = self.epoch;
            let rx = Arc::clone(&self.job_rx);
            let tx = self.done_tx.clone();
            self.workers.push(std::thread::spawn(move || {
                worker_loop(&file, epoch, &rx, &tx);
            }));
        }
    }

    fn validate(&self, io: &IoRequest) -> Result<()> {
        if io.size == 0 {
            return Err(crate::DeviceError::ZeroLength);
        }
        if !io.offset.is_multiple_of(512) || !io.size.is_multiple_of(512) {
            return Err(crate::DeviceError::Unaligned {
                offset: io.offset,
                len: io.size,
            });
        }
        if io.offset + io.size > self.capacity {
            return Err(crate::DeviceError::OutOfRange {
                offset: io.offset,
                len: io.size,
                capacity: self.capacity,
            });
        }
        Ok(())
    }
}

/// One worker: take a job, wait out its earliest-start time, do the
/// IO on a private aligned scratch buffer, report the wall-clock
/// completion. Exits when the queue is dropped (job channel closed).
// uflip-lint: allow-fn(UF021, reason = "deliberate: blocking on recv under the lock hands jobs out one at a time; the guard drops before the IO itself")
fn worker_loop(
    file: &File,
    epoch: Instant,
    jobs: &Mutex<Receiver<Job>>,
    done: &Sender<Completion>,
) {
    let mut buf = AlignedBuf::new(4096);
    loop {
        // Holding the lock while blocked hands jobs out one at a time;
        // execution still overlaps because the lock drops before IO.
        let job = match jobs.lock() {
            Ok(rx) => match rx.recv() {
                Ok(j) => j,
                Err(_) => return,
            },
            Err(_) => return,
        };
        let now = epoch.elapsed();
        if job.not_before > now {
            std::thread::sleep(job.not_before - now);
        }
        let mut retries = 0u32;
        let result = loop {
            match perform_io(file, &mut buf, &job) {
                Ok(()) => break Ok(()),
                Err(e) if retries < job.retry.max_retries => {
                    retries += 1;
                    std::thread::sleep(job.retry.backoff(retries));
                    let _ = e;
                }
                Err(e) => break Err(e),
            }
        };
        let completion = Completion {
            token: job.token,
            done: epoch.elapsed(),
            result,
            retries,
        };
        if done.send(completion).is_err() {
            return;
        }
    }
}

#[cfg(unix)]
fn perform_io(file: &File, buf: &mut AlignedBuf, job: &Job) -> std::io::Result<()> {
    let len = job.len as usize;
    buf.ensure(len);
    match job.mode {
        Mode::Read => file.read_exact_at(&mut buf.as_mut_slice()[..len], job.offset),
        Mode::Write => {
            buf.as_mut_slice()[..len].fill(job.fill);
            file.write_all_at(&buf.as_slice()[..len], job.offset)
        }
    }
}

#[cfg(not(unix))]
fn perform_io(_file: &File, _buf: &mut AlignedBuf, _job: &Job) -> std::io::Result<()> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "threaded IO queue requires a Unix platform",
    ))
}

impl IoQueue for ThreadedIoQueue {
    fn queue_depth(&self) -> u32 {
        self.depth
    }

    fn set_queue_depth(&mut self, depth: u32) -> Result<()> {
        if self.in_flight > 0 {
            return Err(crate::DeviceError::DepthChangeInFlight {
                in_flight: self.in_flight,
            });
        }
        self.depth = depth.max(1);
        Ok(())
    }

    fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn submit(&mut self, io: &IoRequest, at: Duration) -> Result<Token> {
        if self.in_flight >= self.depth as usize {
            if self.sink_enabled {
                self.sink.add(CounterId::QueueFullRejections, 1);
            }
            return Err(crate::DeviceError::QueueFull { depth: self.depth });
        }
        self.validate(io)?;
        {
            let mut lane = self.lane.lock().map_err(|_| {
                crate::DeviceError::Internal("completion lane poisoned by a worker panic")
            })?;
            lane.drain();
            self.flush_retries(&mut lane);
            if let Some(e) = lane.failed.pop_front() {
                return Err(crate::DeviceError::Io(e));
            }
        }
        self.ensure_workers();
        self.fill = self.fill.wrapping_add(1);
        let token = Token::from_raw(self.next_token);
        let job = Job {
            token: self.next_token,
            mode: io.mode,
            offset: io.offset,
            len: io.size,
            not_before: at,
            fill: self.fill,
            retry: self.retry,
        };
        self.job_tx
            .as_ref()
            .ok_or(crate::DeviceError::Internal(
                "job channel closed while the queue lives",
            ))?
            .send(job)
            .map_err(|_| {
                crate::DeviceError::Io(std::io::Error::other("IO worker pool shut down"))
            })?;
        self.next_token += 1;
        self.in_flight += 1;
        if self.sink_enabled {
            self.sink.add(CounterId::QueueSubmissions, 1);
            match io.mode {
                Mode::Read => {
                    self.sink.add(CounterId::HostReads, 1);
                    self.sink.add(CounterId::LogicalBytesRead, io.size);
                }
                Mode::Write => {
                    self.sink.add(CounterId::HostWrites, 1);
                    self.sink.add(CounterId::LogicalBytesWritten, io.size);
                }
            }
        }
        Ok(token)
    }

    fn next_completion(&self) -> Option<Duration> {
        // Poisoned lane: no completion is knowable; the error surfaces
        // on the next submit/take_error.
        let Ok(mut lane) = self.lane.lock() else {
            return None;
        };
        lane.drain();
        lane.ready
            .peek()
            .map(|Reverse((ns, _))| Duration::from_nanos(*ns))
    }

    // uflip-lint: allow-fn(UF021, reason = "single consumer: poll is the only reader of done_rx, which lives inside the lane it locks; workers send without taking the lane")
    fn poll(&mut self) -> Option<(Token, Duration)> {
        // Poisoned lane: the pool is dead, nothing left to wait for
        // (same contract as the channel closing below).
        let Ok(mut lane) = self.lane.lock() else {
            return None;
        };
        lane.drain();
        self.flush_retries(&mut lane);
        if lane.ready.is_empty() {
            if self.in_flight == 0 {
                return None;
            }
            // Block for the next completion; a worker will deliver one
            // (or the channel closes if the pool died, in which case
            // there is nothing left to wait for).
            match lane.done_rx.recv() {
                Ok(c) => {
                    lane.admit(c);
                    lane.drain();
                }
                Err(_) => return None,
            }
            self.flush_retries(&mut lane);
        }
        let Reverse((ns, tok)) = lane.ready.pop()?;
        self.in_flight -= 1;
        if self.sink_enabled {
            self.sink.add(CounterId::QueueCompletions, 1);
        }
        Some((Token::from_raw(tok), Duration::from_nanos(ns)))
    }
}

impl Drop for ThreadedIoQueue {
    fn drop(&mut self) {
        // Closing the job channel lets workers finish queued jobs and
        // exit; join so no thread outlives the file handle's owner.
        drop(self.job_tx.take());
        for w in self.workers.drain(..) {
            // uflip-lint: allow(UF030, reason = "a worker that panicked already reported its error via take_error; Drop must not panic again")
            let _ = w.join();
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("uflip-tq-{name}-{}", std::process::id()))
    }

    fn queue(name: &str, capacity: u64) -> (ThreadedIoQueue, std::path::PathBuf) {
        let path = scratch(name);
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .unwrap();
        file.set_len(capacity).unwrap();
        let q = ThreadedIoQueue::new(Arc::new(file), capacity, Instant::now());
        (q, path)
    }

    fn io(mode: Mode, offset: u64, size: u64) -> IoRequest {
        IoRequest {
            index: 0,
            offset,
            size,
            mode,
            submit_delay: Duration::ZERO,
            process: 0,
        }
    }

    #[test]
    fn admission_respects_queue_depth() {
        let (mut q, path) = queue("admission", 1 << 20);
        q.set_queue_depth(2).unwrap();
        q.submit(&io(Mode::Write, 0, 4096), Duration::ZERO).unwrap();
        q.submit(&io(Mode::Write, 4096, 4096), Duration::ZERO)
            .unwrap();
        assert!(matches!(
            q.submit(&io(Mode::Write, 8192, 4096), Duration::ZERO),
            Err(crate::DeviceError::QueueFull { depth: 2 })
        ));
        assert_eq!(q.in_flight(), 2);
        while q.poll().is_some() {}
        assert_eq!(q.in_flight(), 0);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn every_token_completes_exactly_once() {
        let (mut q, path) = queue("tokens", 1 << 20);
        q.set_queue_depth(8).unwrap();
        let mut submitted = HashSet::new();
        let mut polled = HashSet::new();
        for round in 0..4 {
            for i in 0..8u64 {
                let t = q
                    .submit(&io(Mode::Write, i * 4096, 4096), Duration::ZERO)
                    .unwrap();
                assert!(submitted.insert(t), "token reuse in round {round}");
            }
            while let Some((t, done)) = q.poll() {
                assert!(polled.insert(t), "token completed twice");
                assert!(done > Duration::ZERO);
            }
        }
        assert_eq!(submitted, polled);
        assert_eq!(submitted.len(), 32);
        assert!(q.take_error().is_none());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn validation_mirrors_the_sync_path() {
        let (mut q, path) = queue("validate", 1 << 20);
        assert!(matches!(
            q.submit(&io(Mode::Read, 100, 512), Duration::ZERO),
            Err(crate::DeviceError::Unaligned { .. })
        ));
        assert!(matches!(
            q.submit(&io(Mode::Read, 1 << 20, 512), Duration::ZERO),
            Err(crate::DeviceError::OutOfRange { .. })
        ));
        assert!(matches!(
            q.submit(&io(Mode::Read, 0, 0), Duration::ZERO),
            Err(crate::DeviceError::ZeroLength)
        ));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn not_before_delays_the_start() {
        let (mut q, path) = queue("delay", 1 << 20);
        let epoch_now = Duration::ZERO;
        let hold = Duration::from_millis(20);
        q.submit(&io(Mode::Write, 0, 512), epoch_now + hold)
            .unwrap();
        let (_, done) = q.poll().expect("one IO in flight");
        assert!(done >= hold, "IO started before its earliest-start time");
        let _ = std::fs::remove_file(path);
    }

    /// A queue whose declared capacity exceeds the backing file, so
    /// reads past EOF fail inside the workers.
    fn short_file_queue(
        name: &str,
        file_len: u64,
        declared: u64,
    ) -> (ThreadedIoQueue, std::path::PathBuf) {
        let path = scratch(name);
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        file.set_len(file_len).unwrap();
        let q = ThreadedIoQueue::new(Arc::new(file), declared, Instant::now());
        (q, path)
    }

    #[test]
    fn concurrent_failures_all_surface() {
        let (mut q, path) = short_file_queue("twofail", 4096, 1 << 20);
        q.set_queue_depth(2).unwrap();
        q.submit(&io(Mode::Read, 512 * 1024, 4096), Duration::ZERO)
            .unwrap();
        q.submit(&io(Mode::Read, 768 * 1024, 4096), Duration::ZERO)
            .unwrap();
        // Both IOs complete (poll has no error channel)...
        assert!(q.poll().is_some());
        assert!(q.poll().is_some());
        assert!(q.poll().is_none());
        // ...and BOTH failures report, not just the first-observed one.
        assert!(q.take_error().is_some(), "first failure must surface");
        assert!(q.take_error().is_some(), "second failure must surface too");
        assert!(q.take_error().is_none());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn retry_budget_is_spent_and_counted() {
        let (mut q, path) = short_file_queue("retry", 4096, 1 << 20);
        let (metrics, handle) = uflip_obs::Metrics::shared();
        q.set_sink(handle);
        q.set_retry(RetrySpec {
            max_retries: 2,
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_micros(200),
        });
        // A read past EOF fails deterministically on every attempt.
        q.submit(&io(Mode::Read, 512 * 1024, 4096), Duration::ZERO)
            .unwrap();
        let (_, _) = q.poll().expect("the IO completes after its retries");
        assert!(q.take_error().is_some(), "budget exhausted, error parks");
        assert_eq!(
            metrics.counter(CounterId::IoRetries),
            2,
            "both retries counted"
        );
        // A successful IO spends no retries.
        q.submit(&io(Mode::Write, 0, 4096), Duration::ZERO).unwrap();
        q.poll().unwrap();
        assert!(q.take_error().is_none());
        assert_eq!(metrics.counter(CounterId::IoRetries), 2);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let spec = RetrySpec {
            max_retries: 10,
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_micros(350),
        };
        assert_eq!(spec.backoff(1), Duration::from_micros(100));
        assert_eq!(spec.backoff(2), Duration::from_micros(200));
        assert_eq!(spec.backoff(3), Duration::from_micros(350), "capped");
        assert_eq!(spec.backoff(9), Duration::from_micros(350));
    }

    #[test]
    fn depth_change_mid_flight_is_an_error() {
        let (mut q, path) = queue("midflight", 1 << 20);
        q.set_queue_depth(4).unwrap();
        q.submit(&io(Mode::Write, 0, 4096), Duration::ZERO).unwrap();
        assert!(matches!(
            q.set_queue_depth(8),
            Err(crate::DeviceError::DepthChangeInFlight { in_flight: 1 })
        ));
        while q.poll().is_some() {}
        q.set_queue_depth(8).unwrap();
        assert_eq!(q.queue_depth(), 8);
        let _ = std::fs::remove_file(path);
    }
}
