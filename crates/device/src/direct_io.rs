//! Real-hardware backend: direct file IO, synchronous and queued.
//!
//! Paper §4.3: "we use direct IO in order to bypass the host file system
//! and synchronous IO to avoid the parallelism features of the operating
//! system and device drivers." On Linux we open the target (a regular
//! file or a raw block device like `/dev/sdX`) with `O_DIRECT | O_SYNC`
//! and issue positioned reads/writes on page-aligned buffers, timing
//! each IO with a monotonic clock.
//!
//! Beyond the paper's synchronous setup, the device also serves the
//! NCQ-style [`crate::IoQueue`] interface through an embedded
//! [`ThreadedIoQueue`] (`BlockDevice::io_queue`), so queue-depth
//! sweeps and open-loop trace replays measure *real* OS/device
//! parallelism — the very effect §4.3's synchronous setting controls
//! away when a run must not overlap.
//!
//! No `libc` dependency: the open flags are passed through
//! `OpenOptionsExt::custom_flags` and the aligned buffer is carved out
//! of an over-allocated `Vec` — all safe `std`.

use crate::block_device::BlockDevice;
use crate::threaded_queue::ThreadedIoQueue;
use crate::Result;
use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[cfg(unix)]
use std::os::unix::fs::{FileExt, OpenOptionsExt};

/// `O_DIRECT` on Linux: bypass the page cache. The value is
/// architecture-specific — on arm/aarch64/riscv `0x4000` is
/// `O_DIRECTORY`, which would make every open of a regular file fail
/// with `ENOTDIR`.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
pub const O_DIRECT: i32 = 0x4000;
/// `O_DIRECT` on Linux (arm/aarch64/riscv/loongarch value).
#[cfg(any(
    target_arch = "arm",
    target_arch = "aarch64",
    target_arch = "riscv32",
    target_arch = "riscv64",
    target_arch = "loongarch64"
))]
pub const O_DIRECT: i32 = 0x10000;
/// `O_DIRECT` on Linux (powerpc value).
#[cfg(any(target_arch = "powerpc", target_arch = "powerpc64"))]
pub const O_DIRECT: i32 = 0x20000;
/// `O_DIRECT` on Linux (generic-ABI fallback for other architectures).
#[cfg(not(any(
    target_arch = "x86",
    target_arch = "x86_64",
    target_arch = "arm",
    target_arch = "aarch64",
    target_arch = "riscv32",
    target_arch = "riscv64",
    target_arch = "loongarch64",
    target_arch = "powerpc",
    target_arch = "powerpc64"
)))]
pub const O_DIRECT: i32 = 0x4000;
/// `O_SYNC` on Linux: synchronous file integrity completion.
pub const O_SYNC: i32 = 0x101000;
/// `O_SYNC` on macOS (which has no `O_DIRECT`; see
/// [`DirectIoFile::open`]).
pub const O_SYNC_MACOS: i32 = 0x0080;

/// Buffer alignment required by `O_DIRECT` (logical block size; 4 KiB is
/// safe on every modern device).
pub const DIRECT_IO_ALIGN: usize = 4096;

/// A buffer whose data region is aligned to [`DIRECT_IO_ALIGN`], built
/// without unsafe code by over-allocating and slicing.
#[derive(Debug)]
pub struct AlignedBuf {
    raw: Vec<u8>,
    start: usize,
    len: usize,
}

impl AlignedBuf {
    /// Allocate an aligned, zero-filled buffer of `len` bytes.
    pub fn new(len: usize) -> Self {
        let raw = vec![0u8; len + DIRECT_IO_ALIGN];
        let addr = raw.as_ptr() as usize;
        let start = (DIRECT_IO_ALIGN - (addr % DIRECT_IO_ALIGN)) % DIRECT_IO_ALIGN;
        AlignedBuf { raw, start, len }
    }

    /// The aligned data region.
    pub fn as_slice(&self) -> &[u8] {
        &self.raw[self.start..self.start + self.len]
    }

    /// The aligned data region, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.raw[self.start..self.start + self.len]
    }

    /// Grow (re-allocate) if smaller than `len`.
    pub fn ensure(&mut self, len: usize) {
        if self.len < len {
            *self = AlignedBuf::new(len);
        }
    }
}

/// A real device (or file) driven through `O_DIRECT`/`O_SYNC`.
#[derive(Debug)]
pub struct DirectIoFile {
    name: String,
    file: Arc<File>,
    capacity: u64,
    buf: AlignedBuf,
    epoch: Instant,
    fill: u8,
    queue: ThreadedIoQueue,
    /// Observability sink for the synchronous path; the queued path
    /// emits through the embedded [`ThreadedIoQueue`]'s own handle.
    sink: uflip_obs::SinkHandle,
    /// Cached `sink.is_enabled()` so the no-op path costs one bool test.
    sink_enabled: bool,
}

impl DirectIoFile {
    /// Open `path` for direct IO, exposing `capacity` bytes. For regular
    /// files the file is extended to `capacity` first; for block
    /// devices the usable size is probed (seek-to-end) and a `capacity`
    /// beyond it fails fast instead of erroring mid-benchmark on the
    /// first out-of-range IO.
    ///
    /// Non-Linux Unix platforms have no `O_DIRECT`, and the device
    /// name says what actually happened instead of mislabeling
    /// cache-polluted results as `direct:`: macOS opens with plain
    /// `O_SYNC` and reports `osync:…`; other Unixes open buffered,
    /// report `buffered:…`, and warn on stderr.
    pub fn open(path: &Path, capacity: u64) -> Result<Self> {
        let mut opts = OpenOptions::new();
        // Never truncate: benchmarking an existing device/file must not
        // destroy its contents on open (writes are destructive enough).
        opts.read(true).write(true).create(true).truncate(false);
        #[cfg(target_os = "linux")]
        let prefix = {
            opts.custom_flags(O_DIRECT | O_SYNC);
            "direct"
        };
        #[cfg(target_os = "macos")]
        let prefix = {
            opts.custom_flags(O_SYNC_MACOS);
            "osync"
        };
        #[cfg(all(unix, not(any(target_os = "linux", target_os = "macos"))))]
        let prefix = {
            // uflip-lint: allow(UF004, reason = "one-time non-Linux fallback warning at open; obs has no warning channel")
            eprintln!(
                "warning: no O_DIRECT on this platform; {} opens buffered \
                 (results include OS caching)",
                path.display()
            );
            "buffered"
        };
        #[cfg(not(unix))]
        let prefix = "direct";
        let file = opts.open(path)?;
        Self::from_file(file, format!("{prefix}:{}", path.display()), capacity)
    }

    /// Open without `O_DIRECT` (buffered) — used by tests and as an
    /// escape hatch for filesystems that reject direct IO.
    pub fn open_buffered(path: &Path, capacity: u64) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Self::from_file(file, format!("buffered:{}", path.display()), capacity)
    }

    /// Shared tail of the open paths: size the target (extend regular
    /// files, probe block devices), stamp the epoch and build the
    /// queue engine over a shared handle.
    fn from_file(mut file: File, name: String, capacity: u64) -> Result<Self> {
        let meta = file.metadata()?;
        if meta.is_file() {
            if meta.len() < capacity {
                file.set_len(capacity)?;
            }
        } else {
            // Block devices report len() == 0 through metadata; the
            // usable size is where seek-to-end lands. Probing at open
            // turns a mid-benchmark OutOfRange surprise into an
            // immediate, explainable failure.
            use std::io::{Seek, SeekFrom};
            let end = file.seek(SeekFrom::End(0))?;
            file.seek(SeekFrom::Start(0))?;
            if end > 0 && capacity > end {
                return Err(crate::DeviceError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!(
                        "requested capacity {capacity} B exceeds the device's \
                         usable size {end} B ({name})"
                    ),
                )));
            }
        }
        let file = Arc::new(file);
        let epoch = Instant::now();
        let queue = ThreadedIoQueue::new(Arc::clone(&file), capacity, epoch);
        Ok(DirectIoFile {
            name,
            file,
            capacity,
            buf: AlignedBuf::new(DIRECT_IO_ALIGN),
            epoch,
            fill: 0xA5,
            queue,
            sink: uflip_obs::SinkHandle::null(),
            sink_enabled: false,
        })
    }

    /// The embedded threaded queue (e.g. to collect a parked
    /// asynchronous IO error after a queued run).
    pub fn threaded_queue_mut(&mut self) -> &mut ThreadedIoQueue {
        &mut self.queue
    }
}

impl BlockDevice for DirectIoFile {
    fn name(&self) -> &str {
        &self.name
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    #[cfg(unix)]
    fn read(&mut self, offset: u64, len: u64) -> Result<Duration> {
        self.check(offset, len)?;
        self.buf.ensure(len as usize);
        let t0 = Instant::now();
        self.file
            .read_exact_at(&mut self.buf.as_mut_slice()[..len as usize], offset)?;
        if self.sink_enabled {
            self.sink.add(uflip_obs::CounterId::HostReads, 1);
            self.sink.add(uflip_obs::CounterId::LogicalBytesRead, len);
        }
        Ok(t0.elapsed())
    }

    #[cfg(unix)]
    fn write(&mut self, offset: u64, len: u64) -> Result<Duration> {
        self.check(offset, len)?;
        self.buf.ensure(len as usize);
        // Vary the payload so content-aware firmware cannot dedup it.
        self.fill = self.fill.wrapping_add(1);
        let fill = self.fill;
        self.buf.as_mut_slice()[..len as usize].fill(fill);
        let t0 = Instant::now();
        self.file
            .write_all_at(&self.buf.as_slice()[..len as usize], offset)?;
        if self.sink_enabled {
            self.sink.add(uflip_obs::CounterId::HostWrites, 1);
            self.sink
                .add(uflip_obs::CounterId::LogicalBytesWritten, len);
        }
        Ok(t0.elapsed())
    }

    #[cfg(not(unix))]
    fn read(&mut self, _offset: u64, _len: u64) -> Result<Duration> {
        Err(crate::DeviceError::Io(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "direct IO backend requires a Unix platform",
        )))
    }

    #[cfg(not(unix))]
    fn write(&mut self, _offset: u64, _len: u64) -> Result<Duration> {
        Err(crate::DeviceError::Io(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "direct IO backend requires a Unix platform",
        )))
    }

    fn idle(&mut self, d: Duration) {
        std::thread::sleep(d);
    }

    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn io_queue(&mut self) -> Option<&mut dyn crate::queue::IoQueue> {
        Some(&mut self.queue)
    }

    fn io_queue_ref(&self) -> Option<&dyn crate::queue::IoQueue> {
        Some(&self.queue)
    }

    fn take_async_error(&mut self) -> Option<std::io::Error> {
        self.queue.take_error()
    }

    fn set_sink(&mut self, sink: uflip_obs::SinkHandle) {
        self.sink_enabled = sink.is_enabled();
        self.queue.set_sink(sink.clone());
        self.sink = sink;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_buf_is_aligned() {
        for len in [1usize, 511, 4096, 65536] {
            let b = AlignedBuf::new(len);
            assert_eq!(b.as_slice().as_ptr() as usize % DIRECT_IO_ALIGN, 0);
            assert_eq!(b.as_slice().len(), len);
        }
    }

    #[test]
    fn aligned_buf_grows_on_demand() {
        let mut b = AlignedBuf::new(512);
        b.ensure(8192);
        assert!(b.as_slice().len() >= 8192);
        assert_eq!(b.as_slice().as_ptr() as usize % DIRECT_IO_ALIGN, 0);
    }

    #[cfg(unix)]
    #[test]
    fn buffered_round_trip_on_temp_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("uflip-directio-test-{}", std::process::id()));
        let mut dev = DirectIoFile::open_buffered(&path, 1 << 20).unwrap();
        assert_eq!(dev.capacity_bytes(), 1 << 20);
        let w = dev.write(4096, 4096).unwrap();
        let r = dev.read(4096, 4096).unwrap();
        assert!(w > Duration::ZERO || r >= Duration::ZERO);
        assert!(dev.write(1 << 20, 512).is_err(), "out of range rejected");
        assert!(dev.write(100, 512).is_err(), "unaligned rejected");
        let _ = std::fs::remove_file(path);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn direct_open_works_or_reports_cleanly() {
        // Some CI filesystems (tmpfs, overlayfs) reject O_DIRECT; accept
        // either a working open or a clean io::Error — never a panic.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("uflip-odirect-test-{}", std::process::id()));
        match DirectIoFile::open(&path, 1 << 20) {
            Ok(mut dev) => match dev.write(0, 4096) {
                Ok(rt) => assert!(rt > Duration::ZERO),
                Err(crate::DeviceError::Io(_)) => {}
                Err(e) => panic!("unexpected error class: {e}"),
            },
            Err(crate::DeviceError::Io(_)) => {}
            Err(e) => panic!("unexpected error class: {e}"),
        }
        let _ = std::fs::remove_file(path);
    }
}
