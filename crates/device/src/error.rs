//! Device-layer errors.

use std::fmt;
use uflip_ftl::FtlError;

/// Errors raised by block devices.
#[derive(Debug)]
pub enum DeviceError {
    /// Request not aligned to the 512-byte sector size.
    Unaligned {
        /// Requested byte offset.
        offset: u64,
        /// Requested length in bytes.
        len: u64,
    },
    /// Request beyond the device capacity.
    OutOfRange {
        /// Requested byte offset.
        offset: u64,
        /// Requested length in bytes.
        len: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// Zero-length IO.
    ZeroLength,
    /// Submission rejected: the device's command queue already holds
    /// `depth` in-flight IOs. The submitter must poll a completion
    /// before retrying (NCQ back-pressure, not a failure of the IO).
    QueueFull {
        /// Configured queue depth.
        depth: u32,
    },
    /// Queue depth reconfiguration rejected because IOs are still in
    /// flight; poll them to completion first.
    DepthChangeInFlight {
        /// IOs in flight at the time of the call.
        in_flight: usize,
    },
    /// The device cannot capture or restore state snapshots (real
    /// hardware backends, trivial test devices).
    SnapshotUnsupported,
    /// A state snapshot was offered to a device of a different
    /// concrete type than the one that captured it.
    SnapshotMismatch {
        /// Concrete device type that refused the snapshot.
        device: &'static str,
    },
    /// Error from the simulated FTL.
    Ftl(FtlError),
    /// IO error from a real backend.
    Io(std::io::Error),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::Unaligned { offset, len } => {
                write!(f, "IO at offset {offset} (+{len}) not sector-aligned")
            }
            DeviceError::OutOfRange {
                offset,
                len,
                capacity,
            } => {
                write!(
                    f,
                    "IO at offset {offset} (+{len}) exceeds capacity {capacity}"
                )
            }
            DeviceError::ZeroLength => write!(f, "zero-length IO"),
            DeviceError::QueueFull { depth } => {
                write!(f, "submission queue full ({depth} IOs in flight)")
            }
            DeviceError::DepthChangeInFlight { in_flight } => {
                write!(
                    f,
                    "cannot change queue depth with {in_flight} IOs in flight"
                )
            }
            DeviceError::SnapshotUnsupported => {
                write!(f, "device does not support state snapshots")
            }
            DeviceError::SnapshotMismatch { device } => {
                write!(f, "snapshot was not captured by a {device}")
            }
            DeviceError::Ftl(e) => write!(f, "FTL error: {e}"),
            DeviceError::Io(e) => write!(f, "backend IO error: {e}"),
        }
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeviceError::Ftl(e) => Some(e),
            DeviceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FtlError> for DeviceError {
    fn from(e: FtlError) -> Self {
        DeviceError::Ftl(e)
    }
}

impl From<std::io::Error> for DeviceError {
    fn from(e: std::io::Error) -> Self {
        DeviceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: DeviceError = FtlError::ZeroLength.into();
        assert!(e.to_string().contains("FTL error"));
        let e: DeviceError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("backend IO error"));
    }
}
