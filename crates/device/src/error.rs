//! Device-layer errors.

use std::fmt;
use uflip_ftl::FtlError;
use uflip_nand::FailureKind;

/// Errors raised by block devices.
#[derive(Debug)]
pub enum DeviceError {
    /// Request not aligned to the 512-byte sector size.
    Unaligned {
        /// Requested byte offset.
        offset: u64,
        /// Requested length in bytes.
        len: u64,
    },
    /// Request beyond the device capacity.
    OutOfRange {
        /// Requested byte offset.
        offset: u64,
        /// Requested length in bytes.
        len: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// Zero-length IO.
    ZeroLength,
    /// Submission rejected: the device's command queue already holds
    /// `depth` in-flight IOs. The submitter must poll a completion
    /// before retrying (NCQ back-pressure, not a failure of the IO).
    QueueFull {
        /// Configured queue depth.
        depth: u32,
    },
    /// Queue depth reconfiguration rejected because IOs are still in
    /// flight; poll them to completion first.
    DepthChangeInFlight {
        /// IOs in flight at the time of the call.
        in_flight: usize,
    },
    /// The device cannot capture or restore state snapshots (real
    /// hardware backends, trivial test devices).
    SnapshotUnsupported,
    /// A state snapshot was offered to a device of a different
    /// concrete type than the one that captured it.
    SnapshotMismatch {
        /// Concrete device type that refused the snapshot.
        device: &'static str,
    },
    /// Error from the simulated FTL.
    Ftl(FtlError),
    /// IO error from a real backend.
    Io(std::io::Error),
    /// A fault injected by an armed
    /// [`FaultPlan`](crate::faults::FaultPlan).
    Injected {
        /// Classification of the injected fault.
        kind: FailureKind,
        /// Arrival-order index of the IO the fault hit.
        index: u64,
    },
    /// The device lost power (injected crash). Every IO fails with
    /// this until [`crate::BlockDevice::recover`] is called.
    PowerLoss {
        /// Arrival-order index of the IO at which power was lost.
        index: u64,
    },
    /// An internal device-layer invariant did not hold (a queue the
    /// caller verified exists is missing, a checked-non-empty slot set
    /// is empty, …). Always an implementation bug; surfaced as a typed
    /// error instead of a panic so a run fails cleanly.
    Internal(&'static str),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::Unaligned { offset, len } => {
                write!(f, "IO at offset {offset} (+{len}) not sector-aligned")
            }
            DeviceError::OutOfRange {
                offset,
                len,
                capacity,
            } => {
                write!(
                    f,
                    "IO at offset {offset} (+{len}) exceeds capacity {capacity}"
                )
            }
            DeviceError::ZeroLength => write!(f, "zero-length IO"),
            DeviceError::QueueFull { depth } => {
                write!(f, "submission queue full ({depth} IOs in flight)")
            }
            DeviceError::DepthChangeInFlight { in_flight } => {
                write!(
                    f,
                    "cannot change queue depth with {in_flight} IOs in flight"
                )
            }
            DeviceError::SnapshotUnsupported => {
                write!(f, "device does not support state snapshots")
            }
            DeviceError::SnapshotMismatch { device } => {
                write!(f, "snapshot was not captured by a {device}")
            }
            DeviceError::Ftl(e) => write!(f, "FTL error: {e}"),
            DeviceError::Io(e) => write!(f, "backend IO error: {e}"),
            DeviceError::Injected { kind, index } => {
                write!(f, "injected {kind} fault on IO #{index}")
            }
            DeviceError::PowerLoss { index } => {
                write!(f, "power lost at IO #{index}; device needs recovery")
            }
            DeviceError::Internal(what) => {
                write!(f, "internal device invariant violated: {what}")
            }
        }
    }
}

impl DeviceError {
    /// Classify the error (see [`FailureKind`]). Queue back-pressure
    /// ([`DeviceError::QueueFull`]) classifies as transient — the IO
    /// itself did not fail; real backend IO errors classify as
    /// transient too, so retry policies treat them like injected
    /// faults.
    pub fn kind(&self) -> FailureKind {
        match self {
            DeviceError::Unaligned { .. }
            | DeviceError::OutOfRange { .. }
            | DeviceError::ZeroLength => FailureKind::Capacity,
            DeviceError::QueueFull { .. } | DeviceError::Io(_) => FailureKind::Transient,
            DeviceError::DepthChangeInFlight { .. }
            | DeviceError::SnapshotUnsupported
            | DeviceError::SnapshotMismatch { .. }
            | DeviceError::Internal(_) => FailureKind::Protocol,
            DeviceError::Ftl(e) => e.kind(),
            DeviceError::Injected { kind, .. } => *kind,
            DeviceError::PowerLoss { .. } => FailureKind::PowerLoss,
        }
    }

    /// Whether a retry policy should consider the error retryable.
    pub fn is_transient(&self) -> bool {
        self.kind().is_transient()
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeviceError::Ftl(e) => Some(e),
            DeviceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FtlError> for DeviceError {
    fn from(e: FtlError) -> Self {
        DeviceError::Ftl(e)
    }
}

impl From<std::io::Error> for DeviceError {
    fn from(e: std::io::Error) -> Self {
        DeviceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: DeviceError = FtlError::ZeroLength.into();
        assert!(e.to_string().contains("FTL error"));
        let e: DeviceError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("backend IO error"));
    }

    #[test]
    fn kinds_classify_structurally() {
        assert_eq!(
            DeviceError::Ftl(FtlError::OutOfPhysicalBlocks).kind(),
            FailureKind::WornOut
        );
        assert_eq!(
            DeviceError::Injected {
                kind: FailureKind::Transient,
                index: 7
            }
            .kind(),
            FailureKind::Transient
        );
        assert_eq!(
            DeviceError::PowerLoss { index: 3 }.kind(),
            FailureKind::PowerLoss
        );
        assert!(DeviceError::Io(std::io::Error::other("x")).is_transient());
        assert!(!DeviceError::ZeroLength.is_transient());
        let s = DeviceError::Injected {
            kind: FailureKind::Timeout,
            index: 12,
        }
        .to_string();
        assert!(s.contains("timeout") && s.contains("#12"), "{s}");
    }
}
