//! # uflip-obs — zero-overhead observability for the IO stack
//!
//! The paper explains device behaviour from *externally observed*
//! response times; Flashmon-style flash monitoring (PAPERS.md) shows
//! how much more you learn by watching the internals. This crate is
//! the substrate for that: every layer of the stack — NAND array, FTL,
//! device, executor — emits events into an [`ObsSink`], and a
//! recording sink turns them into counters, latency histograms and
//! per-channel utilization timelines.
//!
//! ## Zero overhead when disabled
//!
//! The default sink is [`NullSink`]: every [`ObsSink`] method is an
//! empty default, and instrumented components cache
//! `sink.is_enabled()` in a plain `bool` at attach time, so the
//! disabled hot path is a single predictable branch — no virtual call,
//! no atomic, no allocation. Crucially the sink **never touches
//! simulated time**: attaching or detaching a sink cannot change any
//! measured result, only observe it (`BENCH_sim.json` fingerprints are
//! identical with or without one — see `tests/obs_metrics.rs`).
//!
//! ## Pieces
//!
//! * [`CounterId`] / [`ShardedCounters`] — monotonic event counters
//!   (erases, programs, merge kinds, queue events, host IOs, bytes),
//!   sharded across cache-line-padded atomic slots so concurrent
//!   emitters (the sharded suite executor, the threaded IO queue) do
//!   not contend.
//! * [`LatencyHistogram`] — HDR-style log-bucketed histogram: fixed
//!   atomic arrays, no allocation on the record path, quantiles
//!   accurate to one bucket width (≤ 1/16 relative error).
//! * [`ChannelUtilization`] — fixed-bin busy-time timeline per
//!   channel; the bin width doubles when a run outgrows the window.
//! * [`ObsSink`] / [`SinkHandle`] — the trait every layer emits into,
//!   and the cloneable attach handle threaded from bench bins down to
//!   the NAND array.
//! * [`Metrics`] / [`MetricsSnapshot`] — the recording sink and its
//!   versioned JSON snapshot (written by every bench bin's
//!   `--metrics PATH` flag, rendered by `uflip_report::obs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod counter;
pub mod histogram;
pub mod metrics;
pub mod sink;

pub use channel::{ChannelTimeline, ChannelUtilization, UtilizationSnapshot, UTIL_BINS};
pub use counter::{CounterId, CounterSnapshot, ShardedCounters};
pub use histogram::{bucket_width_at, HistogramBucket, HistogramSnapshot, LatencyHistogram};
pub use metrics::{CounterEntry, LatencySnapshot, Metrics, MetricsSnapshot, WorkloadSnapshot};
pub use sink::{LatencyClass, NullSink, ObsSink, SinkHandle, WorkloadMetrics};

/// Schema version stamped into every [`MetricsSnapshot`].
pub const SNAPSHOT_VERSION: u32 = 1;
