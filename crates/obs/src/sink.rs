//! The sink trait instrumented layers emit into, and the attach
//! handle threaded through the stack.
//!
//! Design rule: observation must never perturb measurement. Sinks
//! receive events *about* simulated or wall-clock time but never
//! advance either; every default method is an empty no-op so the
//! disabled path compiles to nothing. Instrumented components
//! additionally cache [`ObsSink::is_enabled`] in a plain `bool` at
//! attach time, making the per-event cost of a disabled sink one
//! predictable branch.

use crate::counter::{CounterId, CounterSnapshot};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which latency population a response time belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum LatencyClass {
    /// Read IOs.
    Read,
    /// Write IOs.
    Write,
    /// IOs from mixed read/write workloads (not split by op).
    Mixed,
    /// Extra response time paid to retries under an IO policy (the
    /// backoff + re-service tail beyond the first attempt).
    Retry,
}

impl LatencyClass {
    /// Number of classes (dense index space).
    pub const COUNT: usize = 4;

    /// Every class, in discriminant order.
    pub const ALL: [LatencyClass; LatencyClass::COUNT] = [
        LatencyClass::Read,
        LatencyClass::Write,
        LatencyClass::Mixed,
        LatencyClass::Retry,
    ];

    /// Stable lowercase name used in snapshots and reports.
    pub fn name(self) -> &'static str {
        match self {
            LatencyClass::Read => "read",
            LatencyClass::Write => "write",
            LatencyClass::Mixed => "mixed",
            LatencyClass::Retry => "retry",
        }
    }
}

/// Derived per-workload metrics emitted once per completed run by the
/// observed executors (counter deltas across the run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMetrics {
    /// Host read requests during the run.
    pub host_reads: u64,
    /// Host write requests during the run.
    pub host_writes: u64,
    /// Logical bytes read by the host.
    pub logical_bytes_read: u64,
    /// Logical bytes written by the host.
    pub logical_bytes_written: u64,
    /// Bytes programmed to flash (copy-backs included).
    pub bytes_programmed: u64,
    /// Bytes of flash capacity erased.
    pub bytes_erased: u64,
    /// Write amplification: `bytes_programmed /
    /// logical_bytes_written` (0.0 when nothing was written).
    pub write_amplification: f64,
}

impl WorkloadMetrics {
    /// Build from a per-run counter delta.
    pub fn from_delta(delta: &CounterSnapshot) -> Self {
        let logical = delta.get(CounterId::LogicalBytesWritten);
        let programmed = delta.get(CounterId::ProgramBytes);
        WorkloadMetrics {
            host_reads: delta.get(CounterId::HostReads),
            host_writes: delta.get(CounterId::HostWrites),
            logical_bytes_read: delta.get(CounterId::LogicalBytesRead),
            logical_bytes_written: logical,
            bytes_programmed: programmed,
            bytes_erased: delta.get(CounterId::EraseBytes),
            write_amplification: if logical == 0 {
                0.0
            } else {
                programmed as f64 / logical as f64
            },
        }
    }
}

/// Receiver for observability events from every layer of the stack.
///
/// All methods default to no-ops; a sink implements only what it
/// records. Implementations must be cheap and non-blocking enough to
/// sit on IO hot paths, and must never influence timing-visible
/// behaviour of the emitting component.
pub trait ObsSink: Send + Sync {
    /// Whether events are recorded at all. Components cache this at
    /// attach time and skip emission entirely when `false`.
    fn is_enabled(&self) -> bool {
        false
    }

    /// Add `n` events to a monotonic counter.
    fn add(&self, _id: CounterId, _n: u64) {}

    /// Record one response time (nanoseconds) for a latency class.
    fn latency(&self, _class: LatencyClass, _ns: u64) {}

    /// Record `busy_ns` of channel occupancy starting at `start_ns`
    /// (device time).
    fn channel_busy(&self, _channel: usize, _start_ns: u64, _busy_ns: u64) {}

    /// Read back the current counter totals (for derived per-run
    /// metrics). No-op sinks leave `out` untouched.
    fn counters(&self, _out: &mut CounterSnapshot) {}

    /// Record derived metrics for one completed workload run.
    fn workload(&self, _label: &str, _metrics: WorkloadMetrics) {}
}

/// The do-nothing sink: every method is the trait default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ObsSink for NullSink {}

/// Cloneable handle to a shared sink, threaded from bench bins down
/// to the NAND array. `Default` is a [`NullSink`], so instrumented
/// structs can `#[derive(Default)]`-style initialize to "disabled".
#[derive(Clone)]
pub struct SinkHandle(Arc<dyn ObsSink>);

impl SinkHandle {
    /// Wrap a shared sink.
    pub fn new(sink: Arc<dyn ObsSink>) -> Self {
        SinkHandle(sink)
    }

    /// The disabled handle.
    pub fn null() -> Self {
        SinkHandle(Arc::new(NullSink))
    }

    /// Whether the underlying sink records events (cache this).
    pub fn is_enabled(&self) -> bool {
        self.0.is_enabled()
    }
}

impl Default for SinkHandle {
    fn default() -> Self {
        SinkHandle::null()
    }
}

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SinkHandle")
            .field(&if self.is_enabled() { "enabled" } else { "null" })
            .finish()
    }
}

impl std::ops::Deref for SinkHandle {
    type Target = dyn ObsSink;

    fn deref(&self) -> &(dyn ObsSink + 'static) {
        &*self.0
    }
}

impl<S: ObsSink + 'static> From<Arc<S>> for SinkHandle {
    fn from(sink: Arc<S>) -> Self {
        SinkHandle(sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_inert() {
        let handle = SinkHandle::default();
        assert!(!handle.is_enabled());
        handle.add(CounterId::PageReads, 5);
        handle.latency(LatencyClass::Read, 100);
        let mut snap = CounterSnapshot::new();
        handle.counters(&mut snap);
        assert_eq!(snap.get(CounterId::PageReads), 0);
        assert_eq!(format!("{handle:?}"), "SinkHandle(\"null\")");
    }

    #[test]
    fn workload_metrics_derive_write_amp() {
        let mut delta = CounterSnapshot::new();
        delta.set(CounterId::LogicalBytesWritten, 1000);
        delta.set(CounterId::ProgramBytes, 2500);
        let m = WorkloadMetrics::from_delta(&delta);
        assert!((m.write_amplification - 2.5).abs() < 1e-12);
        let zero = WorkloadMetrics::from_delta(&CounterSnapshot::new());
        assert_eq!(zero.write_amplification, 0.0);
    }
}
