//! Monotonic event counters, sharded to stay contention-free.
//!
//! Every counter is a plain `u64` total; recording is a single relaxed
//! `fetch_add` on a shard owned (statistically) by the calling thread.
//! Counters only ever move forward: snapshot restores rewind the
//! *device* but not the work the simulation already performed, so a
//! counter reads as "events since the sink was attached".

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Identity of one monotonic counter.
///
/// The discriminant indexes fixed-size arrays ([`CounterSnapshot`],
/// the shards of [`ShardedCounters`]), so the enum must stay dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CounterId {
    /// NAND page reads executed (single + bulk, all chips).
    PageReads,
    /// NAND page programs executed (single + bulk, all chips).
    PagePrograms,
    /// NAND block erases executed (excluding dual-plane pairs).
    BlockErases,
    /// NAND internal copy-back operations.
    CopyBacks,
    /// NAND dual-plane program operations (each programs two pages).
    DualPlanePrograms,
    /// NAND dual-plane erase operations (each erases two blocks).
    DualPlaneErases,
    /// Bytes of page data read from flash.
    ReadBytes,
    /// Bytes of page data programmed to flash (copy-backs included).
    ProgramBytes,
    /// Bytes of flash capacity erased.
    EraseBytes,
    /// FTL synchronous (foreground) merges/reclaims.
    SyncMerges,
    /// FTL asynchronous (idle-time) merges/reclaims.
    AsyncMerges,
    /// FTL switch merges (sequential log block promoted in place).
    SwitchMerges,
    /// FTL full merges (log + data block rewritten).
    FullMerges,
    /// FTL read-modify-write events for sub-page or sub-chunk writes.
    RmwEvents,
    /// Writes absorbed by the FTL write cache (no flash work).
    WriteCacheHits,
    /// IOs accepted by a device queue (`IoQueue::submit` success).
    QueueSubmissions,
    /// IOs completed by a device queue.
    QueueCompletions,
    /// IOs rejected with `QueueFull`.
    QueueFullRejections,
    /// Host read requests entering an FTL or real device.
    HostReads,
    /// Host write requests entering an FTL or real device.
    HostWrites,
    /// Logical bytes read by the host.
    LogicalBytesRead,
    /// Logical bytes written by the host.
    LogicalBytesWritten,
    /// Transient read faults injected by an armed fault plan.
    InjectedReadFaults,
    /// Transient write faults injected by an armed fault plan.
    InjectedWriteFaults,
    /// Latency spikes (and stuck-channel stalls) injected by a plan.
    InjectedLatencySpikes,
    /// IO retries performed by an IO policy (injected or real errors).
    IoRetries,
    /// IOs that exceeded the policy's per-IO timeout.
    IoTimeouts,
    /// IOs abandoned after exhausting the policy's retry budget.
    RetryExhaustions,
    /// Power-loss (crash) events injected by a fault plan.
    PowerLossEvents,
}

impl CounterId {
    /// Number of counters (length of the dense index space).
    pub const COUNT: usize = 29;

    /// Every counter, in discriminant order.
    pub const ALL: [CounterId; CounterId::COUNT] = [
        CounterId::PageReads,
        CounterId::PagePrograms,
        CounterId::BlockErases,
        CounterId::CopyBacks,
        CounterId::DualPlanePrograms,
        CounterId::DualPlaneErases,
        CounterId::ReadBytes,
        CounterId::ProgramBytes,
        CounterId::EraseBytes,
        CounterId::SyncMerges,
        CounterId::AsyncMerges,
        CounterId::SwitchMerges,
        CounterId::FullMerges,
        CounterId::RmwEvents,
        CounterId::WriteCacheHits,
        CounterId::QueueSubmissions,
        CounterId::QueueCompletions,
        CounterId::QueueFullRejections,
        CounterId::HostReads,
        CounterId::HostWrites,
        CounterId::LogicalBytesRead,
        CounterId::LogicalBytesWritten,
        CounterId::InjectedReadFaults,
        CounterId::InjectedWriteFaults,
        CounterId::InjectedLatencySpikes,
        CounterId::IoRetries,
        CounterId::IoTimeouts,
        CounterId::RetryExhaustions,
        CounterId::PowerLossEvents,
    ];

    /// Stable snake_case name used in JSON snapshots and reports.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::PageReads => "page_reads",
            CounterId::PagePrograms => "page_programs",
            CounterId::BlockErases => "block_erases",
            CounterId::CopyBacks => "copy_backs",
            CounterId::DualPlanePrograms => "dual_plane_programs",
            CounterId::DualPlaneErases => "dual_plane_erases",
            CounterId::ReadBytes => "read_bytes",
            CounterId::ProgramBytes => "program_bytes",
            CounterId::EraseBytes => "erase_bytes",
            CounterId::SyncMerges => "sync_merges",
            CounterId::AsyncMerges => "async_merges",
            CounterId::SwitchMerges => "switch_merges",
            CounterId::FullMerges => "full_merges",
            CounterId::RmwEvents => "rmw_events",
            CounterId::WriteCacheHits => "write_cache_hits",
            CounterId::QueueSubmissions => "queue_submissions",
            CounterId::QueueCompletions => "queue_completions",
            CounterId::QueueFullRejections => "queue_full_rejections",
            CounterId::HostReads => "host_reads",
            CounterId::HostWrites => "host_writes",
            CounterId::LogicalBytesRead => "logical_bytes_read",
            CounterId::LogicalBytesWritten => "logical_bytes_written",
            CounterId::InjectedReadFaults => "injected_read_faults",
            CounterId::InjectedWriteFaults => "injected_write_faults",
            CounterId::InjectedLatencySpikes => "injected_latency_spikes",
            CounterId::IoRetries => "io_retries",
            CounterId::IoTimeouts => "io_timeouts",
            CounterId::RetryExhaustions => "retry_exhaustions",
            CounterId::PowerLossEvents => "power_loss_events",
        }
    }

    /// Inverse of [`CounterId::name`], for reading snapshots back.
    pub fn from_name(name: &str) -> Option<CounterId> {
        CounterId::ALL.into_iter().find(|id| id.name() == name)
    }
}

/// Number of independent shards. Power of two; small enough that
/// summing a snapshot stays cheap, large enough that the sharded suite
/// executor's worker threads (bounded by core count) rarely collide.
const SHARDS: usize = 8;

/// One cache line of counters. The alignment keeps two shards from
/// sharing a line, which would reintroduce the contention sharding is
/// meant to remove.
#[derive(Debug)]
#[repr(align(128))]
struct Shard {
    slots: [AtomicU64; CounterId::COUNT],
}

impl Shard {
    fn new() -> Self {
        Shard {
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Pick the calling thread's shard: assigned round-robin on first use,
/// then cached in a thread-local so the record path is one TLS read.
fn shard_index() -> usize {
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    SHARD.with(|cell| {
        let mut idx = cell.get();
        if idx == usize::MAX {
            idx = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            cell.set(idx);
        }
        idx
    })
}

/// A bank of monotonic counters sharded across cache-line-padded
/// atomic slots. Reads sum all shards; writes touch exactly one.
#[derive(Debug)]
pub struct ShardedCounters {
    shards: [Shard; SHARDS],
}

impl Default for ShardedCounters {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedCounters {
    /// All counters at zero.
    pub fn new() -> Self {
        ShardedCounters {
            shards: std::array::from_fn(|_| Shard::new()),
        }
    }

    /// Add `n` events to `id` (relaxed; no ordering with other data).
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        self.shards[shard_index()].slots[id as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current total for one counter.
    pub fn get(&self, id: CounterId) -> u64 {
        self.shards
            .iter()
            .map(|s| s.slots[id as usize].load(Ordering::Relaxed))
            .sum()
    }

    /// Sum every shard into a plain snapshot.
    pub fn snapshot(&self, out: &mut CounterSnapshot) {
        for id in CounterId::ALL {
            out.set(id, self.get(id));
        }
    }
}

/// A plain (non-atomic) copy of every counter at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    values: [u64; CounterId::COUNT],
}

impl Default for CounterSnapshot {
    fn default() -> Self {
        CounterSnapshot {
            values: [0; CounterId::COUNT],
        }
    }
}

impl CounterSnapshot {
    /// All counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Value of one counter.
    pub fn get(&self, id: CounterId) -> u64 {
        self.values[id as usize]
    }

    /// Overwrite one counter.
    pub fn set(&mut self, id: CounterId, value: u64) {
        self.values[id as usize] = value;
    }

    /// Per-counter difference `self - earlier` (saturating, so a
    /// mismatched pair degrades to zero rather than wrapping).
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut out = CounterSnapshot::new();
        for id in CounterId::ALL {
            out.set(id, self.get(id).saturating_sub(earlier.get(id)));
        }
        out
    }

    /// Iterate `(id, value)` in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (CounterId, u64)> + '_ {
        CounterId::ALL.into_iter().map(|id| (id, self.get(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_discriminants_match_all_order() {
        for (i, id) in CounterId::ALL.into_iter().enumerate() {
            assert_eq!(id as usize, i, "{id:?} out of order");
            assert_eq!(CounterId::from_name(id.name()), Some(id));
        }
    }

    #[test]
    fn add_sums_across_threads() {
        let counters = std::sync::Arc::new(ShardedCounters::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = counters.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.add(CounterId::PagePrograms, 2);
                    }
                });
            }
        });
        assert_eq!(counters.get(CounterId::PagePrograms), 8000);
        assert_eq!(counters.get(CounterId::PageReads), 0);
    }

    #[test]
    fn snapshot_since_subtracts() {
        let counters = ShardedCounters::new();
        let mut before = CounterSnapshot::new();
        counters.add(CounterId::BlockErases, 3);
        counters.snapshot(&mut before);
        counters.add(CounterId::BlockErases, 4);
        let mut after = CounterSnapshot::new();
        counters.snapshot(&mut after);
        assert_eq!(after.since(&before).get(CounterId::BlockErases), 4);
    }
}
