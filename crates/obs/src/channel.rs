//! Per-channel busy-time utilization timelines.
//!
//! Devices report `(channel, start_ns, busy_ns)` slices of channel
//! occupancy; the timeline accumulates them into a fixed number of
//! time bins. When a run outgrows the covered window the bin width
//! doubles and adjacent bins fold together, so memory stays constant
//! no matter how long the run is — the resolution adapts instead.

use serde::{Deserialize, Serialize};

/// Number of time bins in a utilization timeline. Fixed: growth is by
/// widening bins, never by allocating more.
pub const UTIL_BINS: usize = 64;

/// Starting bin width (1 ms of device time); doubles as needed.
const INITIAL_BIN_NS: u64 = 1_000_000;

/// Busy-time accumulator: per channel, busy nanoseconds per time bin.
#[derive(Debug, Clone)]
pub struct ChannelUtilization {
    bin_ns: u64,
    channels: Vec<[u64; UTIL_BINS]>,
    horizon_ns: u64,
}

impl Default for ChannelUtilization {
    fn default() -> Self {
        Self::new()
    }
}

impl ChannelUtilization {
    /// An empty timeline.
    pub fn new() -> Self {
        ChannelUtilization {
            bin_ns: INITIAL_BIN_NS,
            channels: Vec::new(),
            horizon_ns: 0,
        }
    }

    /// Record `busy_ns` of occupancy on `channel` starting at
    /// `start_ns` (device time). The busy interval is spread
    /// proportionally over the bins it overlaps.
    pub fn record(&mut self, channel: usize, start_ns: u64, busy_ns: u64) {
        if busy_ns == 0 {
            return;
        }
        if channel >= self.channels.len() {
            self.channels.resize(channel + 1, [0; UTIL_BINS]);
        }
        let end_ns = start_ns.saturating_add(busy_ns);
        while end_ns > self.bin_ns.saturating_mul(UTIL_BINS as u64) {
            self.rescale();
        }
        self.horizon_ns = self.horizon_ns.max(end_ns);
        let bins = &mut self.channels[channel];
        let mut at = start_ns;
        while at < end_ns {
            let bin = (at / self.bin_ns) as usize;
            let bin_end = (bin as u64 + 1) * self.bin_ns;
            let slice = end_ns.min(bin_end) - at;
            bins[bin.min(UTIL_BINS - 1)] += slice;
            at = bin_end;
        }
    }

    /// Double the bin width, folding adjacent bins together.
    fn rescale(&mut self) {
        for bins in &mut self.channels {
            for i in 0..UTIL_BINS / 2 {
                bins[i] = bins[2 * i] + bins[2 * i + 1];
            }
            for slot in bins[UTIL_BINS / 2..].iter_mut() {
                *slot = 0;
            }
        }
        self.bin_ns *= 2;
    }

    /// Latest busy end time seen, nanoseconds.
    pub fn horizon_ns(&self) -> u64 {
        self.horizon_ns
    }

    /// Number of channels that reported activity.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Total busy time of one channel.
    pub fn total_busy_ns(&self, channel: usize) -> u64 {
        self.channels
            .get(channel)
            .map_or(0, |bins| bins.iter().sum())
    }

    /// Serializable copy, trimmed to the bins the run actually used.
    pub fn snapshot(&self) -> UtilizationSnapshot {
        let used = if self.horizon_ns == 0 {
            0
        } else {
            (self.horizon_ns.div_ceil(self.bin_ns) as usize).min(UTIL_BINS)
        };
        UtilizationSnapshot {
            bin_ns: self.bin_ns,
            horizon_ns: self.horizon_ns,
            channels: self
                .channels
                .iter()
                .enumerate()
                .map(|(i, bins)| ChannelTimeline {
                    channel: i,
                    busy_ns: bins[..used].to_vec(),
                })
                .collect(),
        }
    }
}

/// One channel's busy time per bin.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelTimeline {
    /// Channel index.
    pub channel: usize,
    /// Busy nanoseconds per time bin, oldest first.
    pub busy_ns: Vec<u64>,
}

/// Serializable utilization timeline for all channels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UtilizationSnapshot {
    /// Width of each bin, nanoseconds.
    pub bin_ns: u64,
    /// Latest busy end time recorded.
    pub horizon_ns: u64,
    /// Per-channel timelines.
    pub channels: Vec<ChannelTimeline>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_time_is_conserved_across_rescales() {
        let mut util = ChannelUtilization::new();
        // Far past the initial 64 ms window: forces several rescales.
        util.record(0, 0, 10_000_000);
        util.record(0, 500_000_000, 20_000_000);
        util.record(1, 900_000_000, 5_000_000);
        assert_eq!(util.total_busy_ns(0), 30_000_000);
        assert_eq!(util.total_busy_ns(1), 5_000_000);
        assert_eq!(util.channels(), 2);
        assert!(util.horizon_ns() >= 905_000_000);
    }

    #[test]
    fn snapshot_trims_unused_bins() {
        let mut util = ChannelUtilization::new();
        util.record(0, 0, 2_000_000); // two initial bins
        let snap = util.snapshot();
        assert_eq!(snap.channels.len(), 1);
        assert_eq!(snap.channels[0].busy_ns.len(), 2);
        assert_eq!(snap.channels[0].busy_ns.iter().sum::<u64>(), 2_000_000);
    }

    #[test]
    fn interval_spreads_over_bins() {
        let mut util = ChannelUtilization::new();
        // 1.5 ms starting at 0.5 ms: half in bin 0, 1 ms in bin 1.
        util.record(0, 500_000, 1_500_000);
        let snap = util.snapshot();
        assert_eq!(snap.channels[0].busy_ns[0], 500_000);
        assert_eq!(snap.channels[0].busy_ns[1], 1_000_000);
    }
}
