//! HDR-style log-bucketed latency histograms.
//!
//! Values (response times in nanoseconds) land in buckets whose width
//! grows with magnitude: each power-of-two octave is split into
//! [`SUB_BUCKETS`] linear sub-buckets, so the relative bucket width —
//! and therefore the worst-case quantile error — is bounded by
//! `1/SUB_BUCKETS` (6.25 %). The bucket array is a fixed-size block of
//! atomics covering the full `u64` range: the record path is two
//! relaxed `fetch_add`s and two `fetch_min`/`fetch_max`es, with no
//! allocation and no locks, so histograms can sit on concurrent paths
//! (sharded suite workers, queue completion threads).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each octave `[2^k, 2^{k+1})` is split into
/// this many linear buckets.
pub const SUB_BUCKETS: usize = 16;

const SUB_BITS: usize = SUB_BUCKETS.trailing_zeros() as usize;

/// Total bucket count: `SUB_BUCKETS` exact unit buckets for values
/// below [`SUB_BUCKETS`], then `64 - SUB_BITS` octaves of
/// `SUB_BUCKETS` buckets each — the whole `u64` range.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS) * SUB_BUCKETS + SUB_BUCKETS;

/// Bucket index for a value. Total order preserving.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let k = 63 - v.leading_zeros() as usize; // 2^k <= v, k >= SUB_BITS
    let sub = (v >> (k - SUB_BITS)) as usize - SUB_BUCKETS;
    (k - SUB_BITS) * SUB_BUCKETS + SUB_BUCKETS + sub
}

/// Inclusive lower bound of bucket `i`.
fn bucket_low(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let octave = (i - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = (i - SUB_BUCKETS) % SUB_BUCKETS;
    ((SUB_BUCKETS + sub) as u64) << octave
}

/// Width of bucket `i` (its bounds are `[low, low + width)`).
fn bucket_width(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        1
    } else {
        1u64 << ((i - SUB_BUCKETS) / SUB_BUCKETS)
    }
}

/// Width of the bucket a value falls in — the quantile error bound
/// around that value (used by the correctness proptest).
pub fn bucket_width_at(v: u64) -> u64 {
    bucket_width(bucket_index(v))
}

/// A log-bucketed latency histogram over nanosecond values.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Lock- and allocation-free.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.min.fetch_min(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Exact arithmetic mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Quantile `q` in `[0, 1]`, linearly interpolated inside the
    /// containing bucket and clamped to the recorded `[min, max]`.
    /// Within [`bucket_width_at`] of the exact order statistic.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        // Same rank convention as `RunStats` (type-7): the quantile
        // sits at fractional rank q * (n - 1) of the sorted values.
        let rank = q.clamp(0.0, 1.0) * (n - 1) as f64;
        let mut cum = 0u64;
        for i in 0..NUM_BUCKETS {
            let c = self.buckets[i].load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 > rank {
                // Ranks [cum, cum + c) live here; spread them evenly.
                let within = ((rank - cum as f64) + 0.5) / c as f64;
                let est = bucket_low(i) as f64 + bucket_width(i) as f64 * within.clamp(0.0, 1.0);
                return (est.round() as u64).clamp(self.min(), self.max());
            }
            cum += c;
        }
        self.max()
    }

    /// Fold another histogram into this one.
    pub fn merge(&self, other: &LatencyHistogram) {
        for i in 0..NUM_BUCKETS {
            let c = other.buckets[i].load(Ordering::Relaxed);
            if c > 0 {
                self.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Plain serializable copy: summary quantiles plus the non-empty
    /// buckets (sparse — the fixed array never serializes whole).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = (0..NUM_BUCKETS)
            .filter_map(|i| {
                let count = self.buckets[i].load(Ordering::Relaxed);
                (count > 0).then(|| HistogramBucket {
                    low_ns: bucket_low(i),
                    width_ns: bucket_width(i),
                    count,
                })
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            min_ns: self.min(),
            max_ns: self.max(),
            mean_ns: self.mean(),
            p50_ns: self.quantile(0.50),
            p90_ns: self.quantile(0.90),
            p95_ns: self.quantile(0.95),
            p99_ns: self.quantile(0.99),
            p999_ns: self.quantile(0.999),
            buckets,
        }
    }
}

/// One non-empty bucket of a serialized histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive lower bound of the bucket, nanoseconds.
    pub low_ns: u64,
    /// Bucket width; values lie in `[low_ns, low_ns + width_ns)`.
    pub width_ns: u64,
    /// Recorded values in this bucket.
    pub count: u64,
}

/// Serializable summary + sparse buckets of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Exact minimum, nanoseconds.
    pub min_ns: u64,
    /// Exact maximum, nanoseconds.
    pub max_ns: u64,
    /// Exact arithmetic mean, nanoseconds.
    pub mean_ns: f64,
    /// Median (interpolated log-bucket quantile).
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Non-empty buckets in ascending order.
    pub buckets: Vec<HistogramBucket>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_monotonic_and_total() {
        let mut prev = 0usize;
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            33,
            1000,
            4096,
            1 << 20,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            assert!(i >= prev, "index not monotonic at {v}");
            assert!(bucket_low(i) <= v, "low bound above value {v}");
            assert!(
                v - bucket_low(i) < bucket_width(i),
                "value {v} outside bucket {i}"
            );
            prev = i;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
            assert_eq!(bucket_width_at(v), 1);
        }
        assert_eq!(h.count(), SUB_BUCKETS as u64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn quantiles_track_uniform_data() {
        let h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1000); // 1 µs .. 10 ms
        }
        for (q, exact) in [(0.5, 5_000_500u64), (0.95, 9_500_050), (0.99, 9_900_010)] {
            let got = h.quantile(q);
            let tol = bucket_width_at(exact).max(bucket_width_at(got));
            assert!(
                got.abs_diff(exact) <= tol,
                "q={q}: got {got}, exact {exact}, tol {tol}"
            );
        }
    }

    #[test]
    fn merge_adds_counts() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(100);
        b.record(200);
        b.record(50);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 50);
        assert_eq!(a.max(), 200);
    }

    #[test]
    fn snapshot_is_sparse() {
        let h = LatencyHistogram::new();
        h.record(1_000_000);
        h.record(1_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.buckets.len(), 1);
        assert_eq!(snap.buckets[0].count, 2);
    }
}
