//! The recording sink and its versioned JSON snapshot.

use crate::channel::{ChannelUtilization, UtilizationSnapshot};
use crate::counter::{CounterId, CounterSnapshot, ShardedCounters};
use crate::histogram::{HistogramSnapshot, LatencyHistogram};
use crate::sink::{LatencyClass, ObsSink, SinkHandle, WorkloadMetrics};
use crate::SNAPSHOT_VERSION;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex, MutexGuard};

/// Lock a metrics mutex, recovering the data if a recording thread
/// panicked while holding it. Observability must never take the
/// simulation down; a poisoned timeline is still worth reporting.
fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The standard recording sink: sharded counters, one latency
/// histogram per [`LatencyClass`], a channel-utilization timeline and
/// the per-workload derived metrics.
///
/// Counter and histogram recording is lock-free; only channel-busy
/// events and workload summaries (rare) take a mutex.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: ShardedCounters,
    latency: [LatencyHistogram; LatencyClass::COUNT],
    utilization: Mutex<ChannelUtilization>,
    workloads: Mutex<Vec<(String, WorkloadMetrics)>>,
}

impl Metrics {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared recorder plus the handle to attach to the stack.
    pub fn shared() -> (Arc<Metrics>, SinkHandle) {
        let metrics = Arc::new(Metrics::new());
        let handle = SinkHandle::from(metrics.clone());
        (metrics, handle)
    }

    /// Current total of one counter.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters.get(id)
    }

    /// The latency histogram of one class.
    pub fn latency(&self, class: LatencyClass) -> &LatencyHistogram {
        &self.latency[class as usize]
    }

    /// Serializable snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = CounterSnapshot::new();
        self.counters.snapshot(&mut counters);
        MetricsSnapshot {
            version: SNAPSHOT_VERSION,
            counters: counters
                .iter()
                .map(|(id, value)| CounterEntry {
                    name: id.name().to_string(),
                    value,
                })
                .collect(),
            latency: LatencyClass::ALL
                .into_iter()
                .filter(|class| !self.latency[*class as usize].is_empty())
                .map(|class| LatencySnapshot {
                    class: class.name().to_string(),
                    histogram: self.latency[class as usize].snapshot(),
                })
                .collect(),
            utilization: {
                let util = lock_or_recover(&self.utilization);
                (util.channels() > 0).then(|| util.snapshot())
            },
            workloads: lock_or_recover(&self.workloads)
                .iter()
                .map(|(label, metrics)| WorkloadSnapshot {
                    label: label.clone(),
                    metrics: *metrics,
                })
                .collect(),
        }
    }
}

impl ObsSink for Metrics {
    fn is_enabled(&self) -> bool {
        true
    }

    fn add(&self, id: CounterId, n: u64) {
        self.counters.add(id, n);
    }

    fn latency(&self, class: LatencyClass, ns: u64) {
        self.latency[class as usize].record(ns);
    }

    fn channel_busy(&self, channel: usize, start_ns: u64, busy_ns: u64) {
        lock_or_recover(&self.utilization).record(channel, start_ns, busy_ns);
    }

    fn counters(&self, out: &mut CounterSnapshot) {
        self.counters.snapshot(out);
    }

    fn workload(&self, label: &str, metrics: WorkloadMetrics) {
        lock_or_recover(&self.workloads).push((label.to_string(), metrics));
    }
}

/// One named counter in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Counter name ([`CounterId::name`]).
    pub name: String,
    /// Total events.
    pub value: u64,
}

/// One latency class's histogram in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySnapshot {
    /// Class name ([`LatencyClass::name`]).
    pub class: String,
    /// The histogram.
    pub histogram: HistogramSnapshot,
}

/// Derived metrics of one workload run in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSnapshot {
    /// Workload label (e.g. `"RW"` or a plan step name).
    pub label: String,
    /// The derived metrics.
    pub metrics: WorkloadMetrics,
}

/// The versioned JSON document written by `--metrics PATH`.
///
/// Schema (`version` 1): `counters` lists every [`CounterId`] by
/// stable name (zeros included, so consumers need no defaulting);
/// `latency` holds one sparse histogram per non-empty class;
/// `utilization` is present when any channel reported busy time;
/// `workloads` one entry per observed run, in execution order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Schema version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Every counter, by stable name, zeros included.
    pub counters: Vec<CounterEntry>,
    /// Per-class latency histograms (non-empty classes only).
    pub latency: Vec<LatencySnapshot>,
    /// Channel busy-time timeline, when any was recorded.
    pub utilization: Option<UtilizationSnapshot>,
    /// Per-workload derived metrics, in execution order.
    pub workloads: Vec<WorkloadSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter by name (0 when absent).
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters
            .iter()
            .find(|e| e.name == id.name())
            .map_or(0, |e| e.value)
    }

    /// Pretty JSON text of the snapshot.
    pub fn to_json_pretty(&self) -> String {
        // uflip-lint: allow(UF002, reason = "serialization of a plain snapshot struct cannot fail")
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Write the snapshot as pretty JSON.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut text = self.to_json_pretty();
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Read a snapshot back from JSON text.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Read a snapshot back from a file.
    pub fn load(path: &std::path::Path) -> Result<Self, Box<dyn std::error::Error>> {
        Ok(Self::from_json(&std::fs::read_to_string(path)?)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_json() {
        let (metrics, handle) = Metrics::shared();
        assert!(handle.is_enabled());
        handle.add(CounterId::PagePrograms, 7);
        handle.add(CounterId::ProgramBytes, 7 * 2048);
        handle.latency(LatencyClass::Write, 250_000);
        handle.channel_busy(0, 0, 100_000);
        handle.workload(
            "RW",
            WorkloadMetrics {
                host_writes: 7,
                logical_bytes_written: 7 * 2048,
                bytes_programmed: 7 * 2048,
                write_amplification: 1.0,
                ..Default::default()
            },
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        assert_eq!(snap.counter(CounterId::PagePrograms), 7);
        assert_eq!(snap.counters.len(), CounterId::COUNT);
        assert_eq!(snap.latency.len(), 1);
        assert_eq!(snap.latency[0].class, "write");
        assert!(snap.utilization.is_some());
        let back = MetricsSnapshot::from_json(&snap.to_json_pretty()).expect("parse back");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_recorder_snapshots_cleanly() {
        let snap = Metrics::new().snapshot();
        assert_eq!(snap.latency.len(), 0);
        assert!(snap.utilization.is_none());
        assert_eq!(snap.counters.len(), CounterId::COUNT);
    }
}
