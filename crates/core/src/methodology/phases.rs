//! Start-up / running phase detection (paper §4.2).
//!
//! "We propose a two-phase model to capture response time variations
//! within the course of a micro-benchmark run. In the first phase,
//! which we call start-up phase, response time is cheap … In the second
//! phase, which we call running phase, response time is typically
//! oscillating between two or more values."
//!
//! The detector classifies each IO as *cheap* or *expensive* by
//! thresholding at the geometric midpoint between the trace's extremes
//! (robust on the log scale the paper plots in Figures 3/4), then:
//!
//! * `start_up` = length of the initial run of cheap IOs before the
//!   first expensive one (0 when none — most devices in the paper);
//! * `period` = mean distance between consecutive expensive IOs in the
//!   running phase (0 when the trace never oscillates);
//! * `variability` = max ÷ min over the running phase.
//!
//! These drive the choice of `IOIgnore` (≥ start-up) and `IOCount`
//! (enough periods for the mean to converge).

use std::time::Duration;

/// Result of two-phase analysis of a response-time trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phases {
    /// Number of cheap IOs before the first expensive one.
    pub start_up: usize,
    /// Average distance between expensive IOs in the running phase
    /// (0 if the running phase never oscillates).
    pub period: usize,
    /// max ÷ min over the running phase.
    pub variability: f64,
    /// The cheap/expensive classification threshold used.
    pub threshold: Duration,
    /// Expensive IOs observed in the running phase.
    pub spikes: usize,
}

/// Minimum max÷min spread for a trace to count as oscillating at all.
/// Below this the trace is treated as uniform (no phases).
const UNIFORM_SPREAD: f64 = 3.0;

/// Analyze a trace into the two-phase model.
pub fn detect_phases(rts: &[Duration]) -> Phases {
    if rts.is_empty() {
        return Phases {
            start_up: 0,
            period: 0,
            variability: 1.0,
            threshold: Duration::ZERO,
            spikes: 0,
        };
    }
    let ns: Vec<f64> = rts.iter().map(|d| d.as_nanos() as f64).collect();
    let min = ns.iter().copied().fold(f64::INFINITY, f64::min).max(1.0);
    let max = ns.iter().copied().fold(0.0, f64::max).max(1.0);
    if max / min < UNIFORM_SPREAD {
        return Phases {
            start_up: 0,
            period: 0,
            variability: max / min,
            threshold: Duration::from_nanos(max as u64),
            spikes: 0,
        };
    }
    // Two-means clustering on the log scale: robust against a lone
    // outlier spike dominating the range (e.g. a first write that
    // closes a heavily dirtied allocation unit).
    let logs: Vec<f64> = ns.iter().map(|&v| v.max(1.0).ln()).collect();
    let mut lo = min.ln();
    let mut hi = max.ln();
    for _ in 0..16 {
        let mid = (lo + hi) / 2.0;
        let (mut sum_lo, mut n_lo, mut sum_hi, mut n_hi) = (0.0, 0u32, 0.0, 0u32);
        for &v in &logs {
            if v < mid {
                sum_lo += v;
                n_lo += 1;
            } else {
                sum_hi += v;
                n_hi += 1;
            }
        }
        if n_lo == 0 || n_hi == 0 {
            break;
        }
        let new_lo = sum_lo / f64::from(n_lo);
        let new_hi = sum_hi / f64::from(n_hi);
        if (new_lo - lo).abs() < 1e-9 && (new_hi - hi).abs() < 1e-9 {
            break;
        }
        lo = new_lo;
        hi = new_hi;
    }
    let threshold = ((lo + hi) / 2.0).exp();
    let expensive: Vec<usize> = ns
        .iter()
        .enumerate()
        .filter(|(_, &v)| v >= threshold)
        .map(|(i, _)| i)
        .collect();
    let start_up = expensive.first().copied().unwrap_or(rts.len());
    let spikes = expensive.len();
    let period = if let [first, .., last] = expensive[..] {
        ((last - first) as f64 / (expensive.len() - 1) as f64).round() as usize
    } else {
        0
    };
    // Variability over the running phase only.
    let run = &ns[start_up.min(ns.len())..];
    let variability = if run.is_empty() {
        1.0
    } else {
        let rmin = run.iter().copied().fold(f64::INFINITY, f64::min).max(1.0);
        let rmax = run.iter().copied().fold(0.0, f64::max).max(1.0);
        rmax / rmin
    };
    Phases {
        start_up,
        period,
        variability,
        threshold: Duration::from_nanos(threshold as u64),
        spikes,
    }
}

/// Derive `IOIgnore` from a set of baseline-pattern phase analyses:
/// the upper bound of the observed start-ups (§4.2: "derive upper
/// bounds across the patterns"), with a safety margin.
pub fn derive_io_ignore(analyses: &[Phases]) -> u64 {
    analyses.iter().map(|p| p.start_up).max().unwrap_or(0) as u64
}

/// Derive `IOCount`: enough IOs to cover the start-up phase plus
/// `periods_wanted` oscillation periods (with a floor for uniform
/// traces).
pub fn derive_io_count(analyses: &[Phases], periods_wanted: usize, floor: u64) -> u64 {
    let ignore = derive_io_ignore(analyses);
    let period = analyses.iter().map(|p| p.period).max().unwrap_or(0);
    (ignore + (period * periods_wanted) as u64).max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> Duration {
        Duration::from_micros(v)
    }

    /// Synthetic Mtron-like RW trace (Figure 3): 125 cheap IOs at
    /// 400 µs, then oscillation 400 µs / 27 ms with period 4.
    fn mtron_like() -> Vec<Duration> {
        let mut rts = vec![us(400); 125];
        for i in 0..200 {
            rts.push(if i % 4 == 3 { us(27_000) } else { us(400) });
        }
        rts
    }

    /// Synthetic Kingston-like SW trace (Figure 4): no start-up, spike
    /// every 128 IOs.
    fn kingston_like() -> Vec<Duration> {
        (0..512)
            .map(|i| if i % 128 == 0 { us(100_000) } else { us(2_900) })
            .collect()
    }

    #[test]
    fn detects_mtron_startup_and_period() {
        let p = detect_phases(&mtron_like());
        assert_eq!(p.start_up, 125 + 3, "first spike at IO 128");
        assert_eq!(p.period, 4);
        assert!(p.variability > 10.0);
    }

    #[test]
    fn detects_kingston_period_without_startup() {
        let p = detect_phases(&kingston_like());
        assert_eq!(p.start_up, 0, "spike at IO 0 → no start-up phase");
        assert_eq!(p.period, 128);
    }

    #[test]
    fn uniform_trace_has_no_phases() {
        let rts = vec![us(300); 100];
        let p = detect_phases(&rts);
        assert_eq!(p.start_up, 0);
        assert_eq!(p.period, 0);
        assert!(p.variability < 1.5);
        assert_eq!(p.spikes, 0);
    }

    #[test]
    fn mild_noise_is_not_oscillation() {
        let rts: Vec<Duration> = (0..100).map(|i| us(300 + (i % 7) * 20)).collect();
        let p = detect_phases(&rts);
        assert_eq!(p.period, 0, "2x jitter is below the spread threshold");
    }

    #[test]
    fn all_cheap_then_no_spikes_counts_whole_trace_as_startup() {
        // A trace with a single early expensive IO then all cheap: the
        // start-up is the prefix before it.
        let mut rts = vec![us(400); 10];
        rts.push(us(30_000));
        rts.extend(vec![us(400); 50]);
        let p = detect_phases(&rts);
        assert_eq!(p.start_up, 10);
        assert_eq!(p.spikes, 1);
        assert_eq!(p.period, 0, "one spike defines no period");
    }

    #[test]
    fn empty_trace() {
        let p = detect_phases(&[]);
        assert_eq!(p.start_up, 0);
        assert_eq!(p.period, 0);
    }

    #[test]
    fn io_ignore_and_count_derivation() {
        let analyses = vec![
            detect_phases(&mtron_like()),
            detect_phases(&kingston_like()),
        ];
        let ignore = derive_io_ignore(&analyses);
        assert_eq!(ignore, 128);
        let count = derive_io_count(&analyses, 20, 512);
        assert_eq!(count, 128 + 128 * 20);
        // The floor dominates for uniform traces.
        let uniform = vec![detect_phases(&[us(300); 10])];
        assert_eq!(derive_io_count(&uniform, 20, 512), 512);
    }
}
