//! The uFLIP benchmarking methodology (paper §4).
//!
//! Measuring flash devices is hard for three reasons the paper spells
//! out, each addressed by one sub-module:
//!
//! * the **device state** determines write costs ([`state`]): uFLIP
//!   enforces a well-defined initial state by writing the whole device
//!   with random IOs of random size (§4.1);
//! * **response time is not uniform in time** ([`phases`]): runs have a
//!   cheap *start-up phase* followed by an oscillating *running phase*;
//!   `IOIgnore` must cover the former and `IOCount` enough periods of
//!   the latter (§4.2);
//! * **consecutive runs interfere** ([`pause`]): asynchronous
//!   reclamation triggered by one run can slow the next; the SR–RW–SR
//!   calibration experiment measures the required inter-run pause
//!   (§4.3, Figure 5).
//!
//! [`plan`] combines the three into a benchmark plan: experiments are
//! ordered, sequential-write experiments are delayed and grouped onto
//! disjoint target spaces, and state resets are inserted only when the
//! accumulated sequential-write footprint exceeds the device (§4.2).

pub mod pause;
pub mod phases;
pub mod plan;
pub mod state;

pub use pause::{calibrate_pause, PauseCalibration};
pub use phases::{detect_phases, Phases};
pub use plan::{BenchmarkPlan, PlanStep};
pub use state::{enforce_random_state, enforce_sequential_state, StateReport};
