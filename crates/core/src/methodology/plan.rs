//! Benchmark plans (paper §4.2, last paragraph).
//!
//! "We define a benchmark plan that defines a sequence of state resets
//! and micro-benchmarks, where those experiments involving sequential
//! writes are delayed and grouped together in such a way that their
//! allocated target space does not overlap, meaning that state resets
//! are inserted only when the size of the accumulated target space
//! involved in sequential write patterns is larger than the size of the
//! flash device. Note that for the large flash devices (32 GB) the
//! state is in fact never reset."
//!
//! The planner takes a list of experiments, splits them into
//! state-neutral ones (reads and random writes — these do not disturb a
//! random device state) and sequential-write ones, runs the neutral
//! ones first, then packs the sequential-write experiments onto
//! non-overlapping target windows, inserting a state reset each time
//! the device space is exhausted.

use crate::experiment::{Experiment, ExperimentPoint};

/// One step of a benchmark plan.
#[derive(Debug, Clone)]
pub enum PlanStep {
    /// Re-enforce the random device state (§4.1).
    ResetState,
    /// Wait for the calibrated inter-run pause.
    Pause,
    /// Run one experiment point (experiment index, point index,
    /// relocated workload offset).
    Run {
        /// Index into the planned experiment list.
        experiment: usize,
        /// Index of the point within the experiment.
        point: usize,
        /// Target offset assigned by the allocator.
        offset: u64,
    },
}

/// A complete benchmark plan over a set of experiments.
#[derive(Debug, Clone)]
pub struct BenchmarkPlan {
    /// The experiments the plan schedules (in the caller's order).
    pub experiments: Vec<Experiment>,
    /// The ordered steps.
    pub steps: Vec<PlanStep>,
    /// Number of state resets in the plan.
    pub resets: usize,
}

impl BenchmarkPlan {
    /// Build a plan for `experiments` on a device of `capacity` bytes.
    ///
    /// Placement rules:
    /// * state-neutral points keep their own target offsets (they are
    ///   confined windows that do not disturb the random state);
    /// * sequential-write points are delayed to the end, packed onto
    ///   disjoint windows from offset 0 upward; when the next window
    ///   would exceed the capacity, a [`PlanStep::ResetState`] is
    ///   emitted and packing restarts at offset 0.
    pub fn build(experiments: Vec<Experiment>, capacity: u64) -> BenchmarkPlan {
        let mut steps = Vec::new();
        let mut resets = 0;

        let is_seq_write = |p: &ExperimentPoint| p.workload.uses_sequential_writes();

        // Phase 1: state-neutral experiments, in order.
        for (ei, e) in experiments.iter().enumerate() {
            for (pi, p) in e.points.iter().enumerate() {
                if !is_seq_write(p) {
                    steps.push(PlanStep::Run {
                        experiment: ei,
                        point: pi,
                        offset: match &p.workload {
                            crate::experiment::Workload::Basic(s) => s.target_offset,
                            crate::experiment::Workload::Mixed(m) => m.a.target_offset,
                            crate::experiment::Workload::Parallel(pp) => pp.base.target_offset,
                        },
                    });
                    steps.push(PlanStep::Pause);
                }
            }
        }

        // Phase 2: sequential-write experiments, packed onto disjoint
        // windows.
        let mut cursor = 0u64;
        for (ei, e) in experiments.iter().enumerate() {
            for (pi, p) in e.points.iter().enumerate() {
                if is_seq_write(p) {
                    let span = p.workload.target_span().max(1);
                    if cursor + span > capacity {
                        steps.push(PlanStep::ResetState);
                        resets += 1;
                        cursor = 0;
                    }
                    steps.push(PlanStep::Run {
                        experiment: ei,
                        point: pi,
                        offset: cursor,
                    });
                    steps.push(PlanStep::Pause);
                    cursor += span;
                }
            }
        }

        BenchmarkPlan {
            experiments,
            steps,
            resets,
        }
    }

    /// Number of run steps.
    pub fn run_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, PlanStep::Run { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Workload;
    use uflip_patterns::PatternSpec;

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;

    fn point(spec: PatternSpec, label: &str) -> ExperimentPoint {
        ExperimentPoint {
            param: 0.0,
            param_label: label.to_string(),
            workload: Workload::Basic(spec),
        }
    }

    fn experiments() -> Vec<Experiment> {
        vec![
            Experiment {
                name: "reads".into(),
                varying: "IOSize",
                points: vec![
                    point(PatternSpec::baseline_sr(32 * KB, MB, 4), "sr"),
                    point(PatternSpec::baseline_rw(32 * KB, MB, 4), "rw"),
                ],
            },
            Experiment {
                name: "writes".into(),
                varying: "IOSize",
                points: vec![
                    point(PatternSpec::baseline_sw(32 * KB, 3 * MB, 4), "sw1"),
                    point(PatternSpec::baseline_sw(32 * KB, 3 * MB, 4), "sw2"),
                    point(PatternSpec::baseline_sw(32 * KB, 3 * MB, 4), "sw3"),
                ],
            },
        ]
    }

    #[test]
    fn neutral_points_run_first() {
        let plan = BenchmarkPlan::build(experiments(), 8 * MB);
        let runs: Vec<(usize, usize)> = plan
            .steps
            .iter()
            .filter_map(|s| match s {
                PlanStep::Run {
                    experiment, point, ..
                } => Some((*experiment, *point)),
                _ => None,
            })
            .collect();
        // SR and RW (experiment 0) come before the SW points (exp 1).
        assert_eq!(runs[0].0, 0);
        assert_eq!(runs[1].0, 0);
        assert!(runs[2..].iter().all(|&(e, _)| e == 1));
        assert_eq!(plan.run_count(), 5);
    }

    #[test]
    fn sequential_writes_get_disjoint_windows() {
        let plan = BenchmarkPlan::build(experiments(), 16 * MB);
        let offsets: Vec<u64> = plan
            .steps
            .iter()
            .filter_map(|s| match s {
                PlanStep::Run {
                    experiment: 1,
                    offset,
                    ..
                } => Some(*offset),
                _ => None,
            })
            .collect();
        assert_eq!(offsets, vec![0, 3 * MB, 6 * MB]);
        assert_eq!(plan.resets, 0, "16 MB fits all three 3 MB windows");
    }

    #[test]
    fn reset_inserted_when_space_exhausted() {
        // 7 MB capacity: two 3 MB windows fit, the third forces a reset.
        let plan = BenchmarkPlan::build(experiments(), 7 * MB);
        assert_eq!(plan.resets, 1);
        let reset_pos = plan
            .steps
            .iter()
            .position(|s| matches!(s, PlanStep::ResetState))
            .expect("reset present");
        // The reset happens before the last SW run.
        let last_run = plan
            .steps
            .iter()
            .rposition(|s| matches!(s, PlanStep::Run { .. }))
            .unwrap();
        assert!(reset_pos < last_run);
    }

    #[test]
    fn large_devices_never_reset() {
        // Mirrors the paper's note about 32 GB devices.
        let plan = BenchmarkPlan::build(experiments(), 1024 * MB);
        assert_eq!(plan.resets, 0);
    }

    #[test]
    fn every_run_is_followed_by_a_pause() {
        let plan = BenchmarkPlan::build(experiments(), 16 * MB);
        for (i, s) in plan.steps.iter().enumerate() {
            if matches!(s, PlanStep::Run { .. }) {
                assert!(
                    matches!(plan.steps.get(i + 1), Some(PlanStep::Pause)),
                    "run at step {i} lacks a trailing pause"
                );
            }
        }
    }
}
