//! Device-state enforcement (paper §4.1).
//!
//! "We propose to enforce an initial state for the benchmark by
//! performing random IOs of random size (ranging from 0.5 KB to the
//! flash block size, 128 KB) on the whole device." The rationale: after
//! writing the whole device, both FTL maps are filled and well-defined;
//! a random state is also *stable*, because only sequential writes
//! disturb it significantly.
//!
//! The alternative — a complete sequential rewrite — is faster but
//! less stable; [`enforce_sequential_state`] implements it for the
//! ablation bench that reproduces the §4.1/§5.1 comparison (including
//! the Samsung out-of-the-box anomaly).

use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use uflip_device::BlockDevice;

/// Outcome of a state-enforcement pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateReport {
    /// IOs issued.
    pub ios: u64,
    /// Bytes written.
    pub bytes: u64,
    /// Device time consumed (the paper reports 5 h for the Memoright up
    /// to 35 days for the Corsair — on the simulator this is virtual).
    pub device_time: Duration,
}

/// Write the whole device with random IOs of random size (0.5 KB up to
/// `max_io_bytes`, the flash-block size — 128 KB in the paper), until
/// the cumulative volume reaches `coverage` × capacity.
pub fn enforce_random_state(
    dev: &mut dyn BlockDevice,
    max_io_bytes: u64,
    coverage: f64,
    seed: u64,
) -> Result<StateReport> {
    let capacity = dev.capacity_bytes();
    let goal = (capacity as f64 * coverage) as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let max_sectors = (max_io_bytes / 512).max(1);
    let t0 = dev.now();
    let mut written = 0u64;
    let mut ios = 0u64;
    while written < goal {
        let sectors = rng.gen_range(1..=max_sectors);
        let len = sectors * 512;
        let max_off_sectors = (capacity - len) / 512;
        let offset = rng.gen_range(0..=max_off_sectors) * 512;
        dev.write(offset, len)?;
        written += len;
        ios += 1;
    }
    Ok(StateReport {
        ios,
        bytes: written,
        device_time: dev.now() - t0,
    })
}

/// Sequentially rewrite the whole device with fixed-size IOs — the
/// faster but less stable alternative state (§4.1).
pub fn enforce_sequential_state(dev: &mut dyn BlockDevice, io_bytes: u64) -> Result<StateReport> {
    let capacity = dev.capacity_bytes();
    let io_bytes = io_bytes.max(512) / 512 * 512;
    let t0 = dev.now();
    let mut written = 0u64;
    let mut ios = 0u64;
    let mut offset = 0u64;
    while offset + io_bytes <= capacity {
        dev.write(offset, io_bytes)?;
        offset += io_bytes;
        written += io_bytes;
        ios += 1;
    }
    Ok(StateReport {
        ios,
        bytes: written,
        device_time: dev.now() - t0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uflip_device::MemDevice;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn random_state_covers_the_requested_volume() {
        let mut dev = MemDevice::new(16 * MB, Duration::from_micros(10), 0);
        let r = enforce_random_state(&mut dev, 128 * 1024, 1.0, 42).unwrap();
        assert!(
            r.bytes >= 16 * MB,
            "must write at least one capacity's worth"
        );
        assert!(r.ios > 0);
        assert!(r.device_time > Duration::ZERO);
    }

    #[test]
    fn random_state_is_deterministic_in_io_count() {
        let mk = || MemDevice::new(4 * MB, Duration::from_micros(1), 0);
        let mut a = mk();
        let mut b = mk();
        let ra = enforce_random_state(&mut a, 128 * 1024, 1.0, 7).unwrap();
        let rb = enforce_random_state(&mut b, 128 * 1024, 1.0, 7).unwrap();
        assert_eq!(ra.ios, rb.ios);
        assert_eq!(ra.bytes, rb.bytes);
    }

    #[test]
    fn sequential_state_walks_the_device_once() {
        let mut dev = MemDevice::new(4 * MB, Duration::from_micros(1), 0);
        let r = enforce_sequential_state(&mut dev, 128 * 1024).unwrap();
        assert_eq!(r.bytes, 4 * MB);
        assert_eq!(r.ios, 32);
    }

    #[test]
    fn partial_coverage_for_quick_tests() {
        let mut dev = MemDevice::new(16 * MB, Duration::from_micros(1), 0);
        let r = enforce_random_state(&mut dev, 64 * 1024, 0.25, 3).unwrap();
        assert!(r.bytes >= 4 * MB && r.bytes < 8 * MB);
    }
}
