//! Inter-run pause calibration (paper §4.3, Figure 5).
//!
//! "To evaluate the length of the pause between runs, we rely on the
//! following experiment. We submit sequential reads, followed by a
//! batch of random writes, and sequential reads again. We count the
//! number of sequential reads in the second batch which are affected by
//! the random writes … we propose to significantly overestimate the
//! length of the pause."

use crate::executor::execute_run;
use crate::Result;
use std::time::Duration;
use uflip_device::BlockDevice;
use uflip_patterns::PatternSpec;

/// Result of the SR–RW–SR calibration experiment.
#[derive(Debug, Clone)]
pub struct PauseCalibration {
    /// Baseline sequential-read trace (before the writes).
    pub sr_before: Vec<Duration>,
    /// Random-write batch trace.
    pub rw: Vec<Duration>,
    /// Sequential-read trace after the writes.
    pub sr_after: Vec<Duration>,
    /// Reads in the after-batch slower than the affected threshold.
    pub affected_reads: usize,
    /// Wall/virtual time those affected reads lingered for.
    pub lingering: Duration,
    /// Recommended inter-run pause (overestimated ×2, floored at 1 s —
    /// the paper used 5 s for the Mtron and 1 s for everything else).
    pub recommended_pause: Duration,
}

/// Run the SR–RW–SR experiment on `dev`.
///
/// * `io_size` — IO size for all three batches (32 KB in the paper);
/// * `sr_count`/`rw_count` — batch lengths (the paper used ≈5000 each,
///   with 3000+ reads after);
/// * `target_size` — window for the random writes.
pub fn calibrate_pause(
    dev: &mut dyn BlockDevice,
    io_size: u64,
    sr_count: u64,
    rw_count: u64,
    target_size: u64,
) -> Result<PauseCalibration> {
    let sr_spec = PatternSpec::baseline_sr(io_size, sr_count * io_size, sr_count);
    let rw_spec =
        PatternSpec::baseline_rw(io_size, target_size, rw_count).with_target(0, target_size);
    let before = execute_run(dev, &sr_spec)?;
    let rw = execute_run(dev, &rw_spec)?;
    let after = execute_run(dev, &sr_spec)?;

    // Affected = slower than 1.5 × the median baseline read.
    let mut base: Vec<Duration> = before.rts.clone();
    base.sort_unstable();
    let median = base[base.len() / 2];
    let threshold = median + median / 2;
    // Count the affected prefix: reads recover once reclamation drains,
    // so we measure how long the lingering lasts from the start.
    let mut affected = 0;
    let mut lingering = Duration::ZERO;
    let mut fast_streak = 0;
    for &rt in &after.rts {
        if rt > threshold {
            affected += 1;
            lingering += rt;
            fast_streak = 0;
        } else if affected > 0 {
            // The lingering trace oscillates; declare recovery only
            // after a sustained run of baseline-speed reads.
            fast_streak += 1;
            if fast_streak >= 16 {
                break;
            }
        }
    }
    let recommended = (lingering * 2).max(Duration::from_secs(1));
    Ok(PauseCalibration {
        sr_before: before.rts,
        rw: rw.rts,
        sr_after: after.rts,
        affected_reads: affected,
        lingering,
        recommended_pause: recommended,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uflip_device::MemDevice;

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;

    #[test]
    fn uniform_device_shows_no_lingering() {
        let mut dev = MemDevice::new(64 * MB, Duration::from_micros(100), 0);
        let cal = calibrate_pause(&mut dev, 32 * KB, 100, 100, 8 * MB).unwrap();
        assert_eq!(cal.affected_reads, 0);
        assert_eq!(cal.lingering, Duration::ZERO);
        assert_eq!(
            cal.recommended_pause,
            Duration::from_secs(1),
            "conservative 1 s floor (the paper's default)"
        );
        assert_eq!(cal.sr_before.len(), 100);
        assert_eq!(cal.sr_after.len(), 100);
    }
}
