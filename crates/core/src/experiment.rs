//! Experiments: collections of runs with a single varying parameter.
//!
//! §3.2, design principle 1: "A collection of runs of the same reference
//! pattern is called an experiment. To enable sound analysis … we design
//! each experiment around a single varying parameter."

use crate::executor::{
    execute_mixed, execute_mixed_with_policy, execute_parallel, execute_parallel_with_policy,
    execute_run, execute_run_with_policy,
};
use crate::policy::IoPolicy;
use crate::run::RunResult;
use crate::stats::RunStats;
use crate::Result;
use uflip_device::BlockDevice;
use uflip_patterns::{MixSpec, ParallelSpec, PatternSpec};

/// A workload point: one of the paper's three pattern classes.
#[derive(Debug, Clone)]
pub enum Workload {
    /// A basic pattern.
    Basic(PatternSpec),
    /// A mixed pattern (micro-benchmark 7).
    Mixed(MixSpec),
    /// A parallel pattern (micro-benchmark 6).
    Parallel(ParallelSpec),
}

impl Workload {
    /// Execute the workload against a device.
    pub fn execute(&self, dev: &mut dyn BlockDevice) -> Result<RunResult> {
        match self {
            Workload::Basic(spec) => execute_run(dev, spec),
            Workload::Mixed(mix) => execute_mixed(dev, mix).map(|(run, _)| run),
            Workload::Parallel(par) => execute_parallel(dev, par),
        }
    }

    /// Execute the workload under an [`IoPolicy`]: transient device
    /// faults are retried with backoff and accounted to `sink`. With
    /// the noop policy this is exactly [`Workload::execute`].
    pub fn execute_with_policy(
        &self,
        dev: &mut dyn BlockDevice,
        policy: &IoPolicy,
        sink: &uflip_obs::SinkHandle,
    ) -> Result<RunResult> {
        match self {
            Workload::Basic(spec) => execute_run_with_policy(dev, spec, policy, sink),
            Workload::Mixed(mix) => {
                execute_mixed_with_policy(dev, mix, policy, sink).map(|(run, _)| run)
            }
            Workload::Parallel(par) => execute_parallel_with_policy(dev, par, policy, sink),
        }
    }

    /// The latency population this workload's response times belong
    /// to: read or write for single-mode patterns (parallel runs take
    /// their base pattern's mode), mixed for read/write mixes.
    pub fn latency_class(&self) -> uflip_obs::LatencyClass {
        use uflip_obs::LatencyClass;
        use uflip_patterns::Mode;
        let by_mode = |mode: Mode| match mode {
            Mode::Read => LatencyClass::Read,
            Mode::Write => LatencyClass::Write,
        };
        match self {
            Workload::Basic(spec) => by_mode(spec.mode),
            Workload::Mixed(_) => LatencyClass::Mixed,
            Workload::Parallel(par) => by_mode(par.base.mode),
        }
    }

    /// Label for reports.
    pub fn label(&self) -> String {
        match self {
            Workload::Basic(spec) => spec.code(),
            Workload::Mixed(mix) => mix.name(),
            Workload::Parallel(par) => par.name(),
        }
    }

    /// Bytes of device space the workload's target window spans
    /// (used by the benchmark-plan allocator).
    pub fn target_span(&self) -> u64 {
        match self {
            Workload::Basic(spec) => spec.target_size,
            Workload::Mixed(mix) => mix.a.target_size + mix.b.target_size,
            Workload::Parallel(par) => par.base.target_size,
        }
    }

    /// Whether the workload issues sequential writes (those experiments
    /// are delayed and grouped by the plan, §4.2).
    pub fn uses_sequential_writes(&self) -> bool {
        fn basic(s: &PatternSpec) -> bool {
            use uflip_patterns::{LbaFn, Mode};
            s.mode == Mode::Write
                && matches!(
                    s.lba,
                    LbaFn::Sequential | LbaFn::Partitioned { .. } | LbaFn::Ordered { .. }
                )
        }
        match self {
            Workload::Basic(s) => basic(s),
            Workload::Mixed(m) => basic(&m.a) || basic(&m.b),
            Workload::Parallel(p) => basic(&p.base),
        }
    }

    /// Shift the workload's target window(s) to a new base offset.
    pub fn relocated(&self, new_offset: u64) -> Workload {
        match self {
            Workload::Basic(s) => Workload::Basic(s.with_target(new_offset, s.target_size)),
            Workload::Mixed(m) => {
                let mut m2 = *m;
                m2.a = m.a.with_target(new_offset, m.a.target_size);
                m2.b =
                    m.b.with_target(new_offset + m.a.target_size, m.b.target_size);
                Workload::Mixed(m2)
            }
            Workload::Parallel(p) => {
                let mut p2 = *p;
                p2.base = p.base.with_target(new_offset, p.base.target_size);
                Workload::Parallel(p2)
            }
        }
    }
}

/// One experiment point: a parameter value and its workload.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// The varying parameter's value at this point.
    pub param: f64,
    /// Human-readable parameter rendering (e.g. `32 KB`).
    pub param_label: String,
    /// The workload to run.
    pub workload: Workload,
}

/// An experiment: runs of the same reference pattern with one varying
/// parameter.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Experiment name (e.g. `granularity/SW`).
    pub name: String,
    /// Name of the varying parameter (e.g. `IOSize`).
    pub varying: &'static str,
    /// The points to measure, in sweep order.
    pub points: Vec<ExperimentPoint>,
}

/// The measured outcome of one experiment point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Parameter value.
    pub param: f64,
    /// Parameter label.
    pub param_label: String,
    /// Workload label.
    pub workload_label: String,
    /// Run trace.
    pub run: RunResult,
    /// Summary statistics (running phase only).
    pub stats: Option<RunStats>,
}

/// The measured outcome of a whole experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment name.
    pub name: String,
    /// Varying parameter name.
    pub varying: &'static str,
    /// Per-point results in sweep order.
    pub points: Vec<PointResult>,
}

impl Experiment {
    /// Run every point against `dev`, inserting `inter_run_pause`
    /// between runs so they do not interfere (§4.3).
    pub fn run(
        &self,
        dev: &mut dyn BlockDevice,
        inter_run_pause: std::time::Duration,
    ) -> Result<ExperimentResult> {
        let mut points = Vec::with_capacity(self.points.len());
        for p in &self.points {
            let run = p.workload.execute(dev)?;
            dev.idle(inter_run_pause);
            let stats = run.summary();
            points.push(PointResult {
                param: p.param,
                param_label: p.param_label.clone(),
                workload_label: p.workload.label(),
                run,
                stats,
            });
        }
        Ok(ExperimentResult {
            name: self.name.clone(),
            varying: self.varying,
            points,
        })
    }
}

impl ExperimentResult {
    /// (param, mean ms) series — the paper's typical plot.
    pub fn mean_series(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .filter_map(|p| p.stats.map(|s| (p.param, s.mean_ms())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use uflip_device::MemDevice;
    use uflip_patterns::{LbaFn, Mode};

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;

    fn exp() -> Experiment {
        let points = [8u64, 16, 32]
            .iter()
            .map(|&kb| ExperimentPoint {
                param: kb as f64,
                param_label: format!("{kb} KB"),
                workload: Workload::Basic(PatternSpec::baseline_sw(kb * KB, 4 * MB, 10)),
            })
            .collect();
        Experiment {
            name: "granularity/SW".into(),
            varying: "IOSize",
            points,
        }
    }

    #[test]
    fn experiment_runs_all_points() {
        let mut dev = MemDevice::new(64 * MB, Duration::from_micros(10), 1);
        let res = exp().run(&mut dev, Duration::from_millis(1)).unwrap();
        assert_eq!(res.points.len(), 3);
        let series = res.mean_series();
        assert_eq!(series.len(), 3);
        // Larger IOs cost more on the linear-cost MemDevice.
        assert!(series[0].1 < series[2].1);
    }

    #[test]
    fn sequential_write_detection() {
        let sw = Workload::Basic(PatternSpec::baseline_sw(32 * KB, MB, 4));
        let rw = Workload::Basic(PatternSpec::baseline_rw(32 * KB, MB, 4));
        let sr = Workload::Basic(PatternSpec::baseline_sr(32 * KB, MB, 4));
        let ordered = Workload::Basic(PatternSpec::baseline(
            LbaFn::Ordered { incr: -1 },
            Mode::Write,
            32 * KB,
            MB,
            4,
        ));
        assert!(sw.uses_sequential_writes());
        assert!(!rw.uses_sequential_writes());
        assert!(!sr.uses_sequential_writes());
        assert!(ordered.uses_sequential_writes());
    }

    #[test]
    fn relocation_moves_windows() {
        let sw = Workload::Basic(PatternSpec::baseline_sw(32 * KB, MB, 4));
        let moved = sw.relocated(16 * MB);
        match moved {
            Workload::Basic(s) => assert_eq!(s.target_offset, 16 * MB),
            _ => unreachable!(),
        }
        let mix = Workload::Mixed(MixSpec::new(
            PatternSpec::baseline_sr(32 * KB, MB, 1),
            PatternSpec::baseline_rw(32 * KB, MB, 1),
            2,
            6,
        ));
        match mix.relocated(8 * MB) {
            Workload::Mixed(m) => {
                assert_eq!(m.a.target_offset, 8 * MB);
                assert_eq!(m.b.target_offset, 9 * MB, "windows stay disjoint");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn target_span_accounts_for_mixes() {
        let mix = Workload::Mixed(MixSpec::new(
            PatternSpec::baseline_sr(32 * KB, MB, 1),
            PatternSpec::baseline_rw(32 * KB, 2 * MB, 1),
            2,
            6,
        ));
        assert_eq!(mix.target_span(), 3 * MB);
    }
}
