//! Device-profile calibration: fit a behavioural profile from measured
//! micro-benchmark runs.
//!
//! uFLIP's premise is that a small set of measured parameters
//! characterizes a flash device well enough to predict its behaviour
//! under arbitrary IO patterns (Tables 2/3). This module closes that
//! loop: [`measure`] runs a **reduced plan** of the existing
//! micro-benchmarks — §4.1 state enforcement, the granularity sweep
//! over all four baseline modes, the alignment sweep, and a
//! parallelism/queue-depth probe — against *any* [`BlockDevice`]
//! (simulated or real), and [`fit`] distills the result into a
//! serializable [`DeviceProfile`] backed by a fitted latency model
//! ([`uflip_ftl::FittedFtl`]).
//!
//! ## How each parameter is derived
//!
//! * **Per-mode latency curves** — the granularity sweep's `(IOSize,
//!   mean)` series for SR/RR/SW/RW become piecewise-linear
//!   [`uflip_ftl::LatencyCurve`]s. The RW curve is measured in the
//!   enforced random state (§4.1), so it *is* the random-write penalty.
//! * **Alignment** — the alignment sweep (RW at the reference IO size,
//!   `IOShift` from 0 to IOSize) yields the mapping granularity (the
//!   smallest clean shift) and the misalignment cost factor (§5.2).
//! * **Internal parallelism** — the probe the B+-tree-on-SSD literature
//!   uses (see PAPERS.md): drive the device's command queue deep and
//!   compare the *steady-state* drain rate of a channel-pinned workload
//!   (repeated reads of one small block — one channel by construction)
//!   against the best spread workload (sequential/strided small reads
//!   over a freshly sequentially-written region). Elapsed times are
//!   differenced between a half-length and a full-length run, so
//!   pipeline ramp-up/-down cancels exactly:
//!   `channels ≈ best_spread_rate / pinned_rate`. The same pinned runs
//!   at depth 1 give the parallel fraction of an IO's latency (the part
//!   that occupies a channel rather than overlapping freely).
//!
//! Every sweep is also recorded in the returned
//! [`CalibrationMeasurement`], which `uflip_report::residual` compares
//! against a re-measurement of the fitted profile (predicted vs
//! measured, per micro-benchmark).

use crate::executor::execute_run;
use crate::methodology::state::enforce_random_state;
use crate::replay::{replay_trace, ReplayMode};
use crate::Result;
use serde::{Deserialize, Serialize};
use std::time::Duration;
use uflip_device::{BlockDevice, DeviceProfile};
use uflip_ftl::{FittedFtlConfig, LatencyCurve};
use uflip_patterns::{LbaFn, Mode, PatternSpec};
use uflip_trace::{Trace, TraceRecord};

/// Configuration of the reduced calibration plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// Reference IO size (32 KB in the paper) — used by the alignment
    /// sweep and reported as the headline baseline cost.
    pub io_size: u64,
    /// IO sizes of the granularity sweep (clamped to the device).
    pub granularity_sizes: Vec<u64>,
    /// IOCount for read and sequential-write runs.
    pub count: u64,
    /// IOCount for random-write runs (longer: their oscillations are
    /// larger, §5.1).
    pub count_rw: u64,
    /// Warm-up IOs ignored in random-write means (`IOIgnore`, §4.2).
    pub ignore_rw: u64,
    /// IO size of the parallelism probe (small enough that one IO
    /// occupies one channel).
    pub probe_bytes: u64,
    /// Base IO count of the parallelism probe; each probe runs at this
    /// count and at twice it, and the rates are differenced.
    pub probe_count: u64,
    /// Deepest queue depth probed (must exceed the largest plausible
    /// channel count times the overhead/flash ratio).
    pub probe_depth: u32,
    /// Enforce the §4.1 random state first. Leave off for real
    /// hardware only when the device is already in a measured state —
    /// enforcement is destructive and slow there.
    pub enforce_state: bool,
    /// Fraction of capacity the state enforcement writes.
    pub state_coverage: f64,
    /// Idle time between runs (§4.3).
    pub inter_run_pause: Duration,
    /// Random seed for patterns and state enforcement.
    pub seed: u64,
}

impl CalibrationConfig {
    /// Paper-faithful counts (SSD class).
    pub fn paper() -> Self {
        CalibrationConfig {
            io_size: 32 * 1024,
            granularity_sizes: vec![512, 2048, 8192, 32 * 1024, 128 * 1024, 512 * 1024],
            count: 512,
            count_rw: 1024,
            ignore_rw: 128,
            probe_bytes: 2048,
            probe_count: 512,
            probe_depth: 64,
            enforce_state: true,
            state_coverage: 2.0,
            inter_run_pause: Duration::from_secs(5),
            seed: 0xF11B,
        }
    }

    /// Reduced counts for smoke runs and tests.
    pub fn quick() -> Self {
        CalibrationConfig {
            count: 96,
            count_rw: 256,
            ignore_rw: 32,
            probe_count: 256,
            state_coverage: 1.5,
            ..Self::paper()
        }
    }
}

/// One `(parameter, mean latency)` sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The varying parameter (IO size in bytes, or shift in bytes).
    pub param: u64,
    /// Mean response time at this point, nanoseconds.
    pub mean_ns: f64,
}

/// One queue-depth sweep point of the parallelism probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QdPoint {
    /// NCQ depth.
    pub queue_depth: u32,
    /// Steady-state drain rate at this depth, IOs per second
    /// (ramp-cancelled, see the module docs).
    pub iops: f64,
    /// Rate relative to depth 1.
    pub speedup_vs_qd1: f64,
}

/// Everything [`measure`] observed, in the order measured. Serializable
/// so a calibration session can be archived next to the fitted profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationMeasurement {
    /// Name of the measured device.
    pub device: String,
    /// Exported capacity of the measured device.
    pub capacity_bytes: u64,
    /// Granularity sweep, sequential reads.
    pub granularity_sr: Vec<SweepPoint>,
    /// Granularity sweep, random reads.
    pub granularity_rr: Vec<SweepPoint>,
    /// Granularity sweep, sequential writes.
    pub granularity_sw: Vec<SweepPoint>,
    /// Granularity sweep, random writes (enforced random state).
    pub granularity_rw: Vec<SweepPoint>,
    /// Alignment sweep: random writes at the reference IO size,
    /// `param` = shift in bytes (0 = aligned reference).
    pub alignment_rw: Vec<SweepPoint>,
    /// Queue-depth sweep of the best spread probe workload.
    pub qd_sweep: Vec<QdPoint>,
    /// Steady-state pinned (single-channel) rate at the deepest queue,
    /// IOs per second.
    pub pinned_iops_deep: f64,
    /// Steady-state pinned rate at depth 1, IOs per second.
    pub pinned_iops_serial: f64,
    /// Best spread steady-state rate at the deepest queue, IOs/s.
    pub spread_iops_deep: f64,
    /// IO size the parallelism probes used.
    pub probe_bytes: u64,
}

impl CalibrationMeasurement {
    /// The four granularity curves as `(mode code, points)` pairs.
    pub fn curves(&self) -> [(&'static str, &[SweepPoint]); 4] {
        [
            ("SR", self.granularity_sr.as_slice()),
            ("RR", self.granularity_rr.as_slice()),
            ("SW", self.granularity_sw.as_slice()),
            ("RW", self.granularity_rw.as_slice()),
        ]
    }

    /// Mean latency of a mode at the reference size (interpolated).
    pub fn baseline_ns(&self, code: &str, io_size: u64) -> Option<f64> {
        let pts = match code {
            "SR" => &self.granularity_sr,
            "RR" => &self.granularity_rr,
            "SW" => &self.granularity_sw,
            "RW" => &self.granularity_rw,
            _ => return None,
        };
        let curve = LatencyCurve::new(
            pts.iter()
                .map(|p| (p.param, p.mean_ns.round() as u64))
                .collect(),
        );
        if curve.is_empty() {
            None
        } else {
            Some(curve.latency_ns(io_size) as f64)
        }
    }
}

/// The fitted parameters plus the profile wrapping them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationOutcome {
    /// The measurement the fit came from.
    pub measurement: CalibrationMeasurement,
    /// The fitted profile, ready for `profile:PATH` use.
    pub profile: DeviceProfile,
}

/// Run the reduced calibration plan against a device.
pub fn measure(
    dev: &mut dyn BlockDevice,
    cfg: &CalibrationConfig,
) -> Result<CalibrationMeasurement> {
    let capacity = dev.capacity_bytes();
    // Three disjoint windows: reads at 0, sequential writes above,
    // random writes above that — sequential-write disturbance (§4.1)
    // stays out of the random-write region.
    let window = (capacity / 4).max(cfg.io_size);
    if cfg.enforce_state {
        enforce_random_state(dev, 128 * 1024, cfg.state_coverage, cfg.seed)?;
    } else {
        // Real targets are not enforced by default; make sure the read
        // window holds allocated data instead of sparse holes.
        prefill_sequential(dev, 0, window)?;
    }
    dev.idle(cfg.inter_run_pause);

    let sizes: Vec<u64> = cfg
        .granularity_sizes
        .iter()
        .copied()
        .filter(|&s| s >= 512 && s <= window)
        .collect();
    let mut granularity: [Vec<SweepPoint>; 4] = Default::default();
    let modes = [
        (LbaFn::Sequential, Mode::Read),
        (LbaFn::Random, Mode::Read),
        (LbaFn::Sequential, Mode::Write),
        (LbaFn::Random, Mode::Write),
    ];
    for &size in &sizes {
        for (slot, &(lba, mode)) in modes.iter().enumerate() {
            // Writes get a short warm-up ignore (§4.2): the first IO of
            // a write run lands on a cold cursor/state and would bias
            // the mean — both on mechanistic devices and on a fitted
            // profile re-measured for the residual report.
            let (offset, count, ignore) = match (lba, mode) {
                (_, Mode::Read) => (0, cfg.count, 0),
                (LbaFn::Sequential, Mode::Write) => (window, cfg.count, cfg.count / 12),
                (_, Mode::Write) => (2 * window, cfg.count_rw, cfg.ignore_rw),
            };
            let spec = PatternSpec::baseline(lba, mode, size, window, count)
                .with_target(offset, window)
                .with_counts(count, ignore.min(count.saturating_sub(1)))
                .with_seed(cfg.seed);
            let run = execute_run(dev, &spec)?;
            dev.idle(cfg.inter_run_pause);
            granularity[slot].push(SweepPoint {
                param: size,
                mean_ns: run.summary().map_or(0.0, |st| st.mean.as_nanos() as f64),
            });
        }
    }
    let [granularity_sr, granularity_rr, granularity_sw, granularity_rw] = granularity;

    // Alignment: random writes at the reference size, shifted.
    let mut alignment_rw = Vec::new();
    for shift in crate::micro::alignment::shifts(cfg.io_size.min(window)) {
        let count = cfg.count_rw;
        let spec = PatternSpec::baseline(LbaFn::Random, Mode::Write, cfg.io_size, window, count)
            .with_target(2 * window, window)
            .with_counts(count, cfg.ignore_rw.min(count.saturating_sub(1)))
            .with_io_shift(shift)
            .with_seed(cfg.seed ^ shift);
        let run = execute_run(dev, &spec)?;
        dev.idle(cfg.inter_run_pause);
        alignment_rw.push(SweepPoint {
            param: shift,
            mean_ns: run.summary().map_or(0.0, |st| st.mean.as_nanos() as f64),
        });
    }

    // Parallelism probe (see the module docs). The probe region is
    // sequentially rewritten first so its physical layout is the
    // striped one a block manager gives sequential data.
    let probe = probe_parallelism(dev, cfg, window)?;

    Ok(CalibrationMeasurement {
        device: dev.name().to_string(),
        capacity_bytes: capacity,
        granularity_sr,
        granularity_rr,
        granularity_sw,
        granularity_rw,
        alignment_rw,
        qd_sweep: probe.qd_sweep,
        pinned_iops_deep: probe.pinned_deep,
        pinned_iops_serial: probe.pinned_serial,
        spread_iops_deep: probe.spread_deep,
        probe_bytes: cfg.probe_bytes,
    })
}

/// Fit a profile from a measurement. `id` names the fitted profile;
/// pass the measured device's name for self-describing output.
pub fn fit(meas: &CalibrationMeasurement, id: impl Into<String>) -> DeviceProfile {
    let curve = |pts: &[SweepPoint]| {
        LatencyCurve::new(
            pts.iter()
                .map(|p| (p.param, p.mean_ns.round().max(1.0) as u64))
                .collect(),
        )
    };
    // Alignment: shifts costing >15 % over the aligned reference are
    // penalized; the mapping granularity is the smallest clean shift
    // (every clean shift observed is a multiple of it), or the full IO
    // size when no shift is clean.
    let (align_granularity_bytes, align_penalty) = fit_alignment(&meas.alignment_rw);
    // Channels: ratio of the best spread drain rate to the pinned
    // (single-channel) drain rate, both at the deepest queue.
    let probes_ok = meas.pinned_iops_deep.is_finite()
        && meas.pinned_iops_deep > 0.0
        && meas.pinned_iops_serial.is_finite()
        && meas.pinned_iops_serial > 0.0
        && meas.spread_iops_deep.is_finite();
    let channels = if probes_ok {
        ((meas.spread_iops_deep / meas.pinned_iops_deep).round() as u32).max(1)
    } else {
        // Degenerate probes (a target too fast or too noisy to
        // resolve): fit the conservative serial device.
        1
    };
    // Parallel fraction: how much of a serial IO's latency the channel
    // actually occupies — the deep pinned rate's per-IO time over the
    // serial per-IO time.
    let parallel_fraction = if probes_ok {
        (meas.pinned_iops_serial / meas.pinned_iops_deep).clamp(0.0, 1.0)
    } else {
        1.0
    };
    let config = FittedFtlConfig {
        capacity_bytes: meas.capacity_bytes,
        channels,
        stripe_bytes: meas.probe_bytes.max(512),
        parallel_fraction,
        read_seq: curve(&meas.granularity_sr),
        read_rand: curve(&meas.granularity_rr),
        write_seq: curve(&meas.granularity_sw),
        write_rand: curve(&meas.granularity_rw),
        align_granularity_bytes,
        align_penalty,
    };
    DeviceProfile::fitted(id, format!("calibrated from {}", meas.device), config)
}

/// [`measure`] + [`fit`] in one call.
pub fn calibrate(
    dev: &mut dyn BlockDevice,
    cfg: &CalibrationConfig,
    id: impl Into<String>,
) -> Result<CalibrationOutcome> {
    let measurement = measure(dev, cfg)?;
    let profile = fit(&measurement, id);
    Ok(CalibrationOutcome {
        measurement,
        profile,
    })
}

/// Re-measure a fitted profile under the same plan (state enforcement
/// skipped — the fitted curves already embody the enforced state), for
/// the residual report.
pub fn predict(profile: &DeviceProfile, cfg: &CalibrationConfig) -> Result<CalibrationMeasurement> {
    let mut cfg = cfg.clone();
    cfg.enforce_state = false;
    let mut dev = profile.build_sim(cfg.seed);
    measure(dev.as_mut(), &cfg)
}

/// Alignment fit: `(granularity bytes, penalty factor)`.
fn fit_alignment(points: &[SweepPoint]) -> (u64, f64) {
    let Some(aligned) = points.iter().find(|p| p.param == 0).map(|p| p.mean_ns) else {
        return (0, 1.0);
    };
    if aligned <= 0.0 {
        return (0, 1.0);
    }
    let penalized: Vec<&SweepPoint> = points
        .iter()
        .filter(|p| p.param != 0 && p.mean_ns > 1.15 * aligned)
        .collect();
    if penalized.is_empty() {
        return (0, 1.0);
    }
    let clean_min = points
        .iter()
        .filter(|p| p.param != 0 && p.mean_ns <= 1.15 * aligned)
        .map(|p| p.param)
        .min();
    // No clean shift below IOSize: the granularity is the IO size
    // itself (twice the largest swept shift).
    let granularity =
        clean_min.unwrap_or_else(|| points.iter().map(|p| p.param).max().unwrap_or(512) * 2);
    let factor =
        penalized.iter().map(|p| p.mean_ns).sum::<f64>() / penalized.len() as f64 / aligned;
    (granularity, factor.max(1.0))
}

struct ParallelProbe {
    qd_sweep: Vec<QdPoint>,
    pinned_deep: f64,
    pinned_serial: f64,
    spread_deep: f64,
}

/// Build a read trace of `count` probe IOs whose LBA sequence is
/// `offset + (i × stride) mod span`.
fn probe_trace(device: &str, offset: u64, stride: u64, span: u64, count: u64, probe: u64) -> Trace {
    let mut t = Trace::new(device, "calibration-probe");
    for i in 0..count {
        let off = offset + (i * stride) % span;
        t.push(TraceRecord {
            op: Mode::Read,
            lba: off / 512,
            sectors: (probe / 512) as u32,
            submit_ns: i,
            complete_ns: i,
            queue_depth: 1,
        });
    }
    t
}

/// Steady-state drain rate of a probe workload at one depth: replay at
/// `count` and `2 × count` IOs and difference the elapsed times, so
/// pipeline fill/drain cancels. Returns IOs per second of device time.
fn steady_rate(
    dev: &mut dyn BlockDevice,
    cfg: &CalibrationConfig,
    offset: u64,
    stride: u64,
    span: u64,
    depth: u32,
) -> Result<f64> {
    let name = dev.name().to_string();
    let mut elapsed = [Duration::ZERO; 2];
    for (slot, count) in [cfg.probe_count, 2 * cfg.probe_count]
        .into_iter()
        .enumerate()
    {
        let trace = probe_trace(&name, offset, stride, span, count, cfg.probe_bytes);
        let run = replay_trace(dev, &trace, ReplayMode::OpenLoop { queue_depth: depth })?;
        dev.idle(cfg.inter_run_pause);
        elapsed[slot] = run.elapsed;
    }
    let delta = elapsed[1].saturating_sub(elapsed[0]).as_secs_f64();
    if delta > 0.0 {
        return Ok(cfg.probe_count as f64 / delta);
    }
    // Wall-clock noise on very fast targets (e.g. a page-cached file)
    // can make the longer run no slower than the shorter one; fall
    // back to the ramp-inclusive rate instead of reporting infinity.
    let full = elapsed[1].as_secs_f64();
    if full > 0.0 {
        Ok(2.0 * cfg.probe_count as f64 / full)
    } else {
        Ok(0.0)
    }
}

/// The parallelism probe: sequentially rewrite a probe region, then
/// compare pinned and spread drain rates (see the module docs).
fn probe_parallelism(
    dev: &mut dyn BlockDevice,
    cfg: &CalibrationConfig,
    window: u64,
) -> Result<ParallelProbe> {
    let probe = cfg.probe_bytes.max(512);
    // The region must hold 2 × probe_count distinct probe-sized blocks
    // (on tiny windows, as many as fit — reads wrap, so a shorter span
    // only recycles blocks). Prefill past it: devices with a RAM write
    // cache still hold the most recently written pages, and probing
    // them would measure the cache, not the flash channels.
    let slack = (512 * 1024u64).min(window / 4);
    let span = (2 * cfg.probe_count * probe)
        .min(window.saturating_sub(slack) / probe * probe)
        .max(probe);
    prefill_sequential(dev, 0, (span + slack).min(window))?;
    dev.idle(cfg.inter_run_pause);

    // Pinned: repeated reads of the first probe block — one channel by
    // construction, at any depth.
    let pinned_serial = steady_rate(dev, cfg, 0, 0, probe, 1)?;
    let pinned_deep = steady_rate(dev, cfg, 0, 0, probe, cfg.probe_depth)?;

    // Spread candidates: sequential small reads, plus power-of-two
    // strides (a block-per-chip layout needs a stride of the block size
    // to rotate channels; sweeping covers every layout).
    let mut strides = vec![probe];
    let mut s = 2 * probe;
    while s <= span / 2 && strides.len() < 12 {
        strides.push(s);
        s *= 2;
    }
    let mut best_stride = probe;
    let mut spread_deep = 0.0_f64;
    for &stride in &strides {
        let rate = steady_rate(dev, cfg, 0, stride, span, cfg.probe_depth)?;
        if rate > spread_deep && rate.is_finite() {
            spread_deep = rate;
            best_stride = stride;
        }
    }

    // Queue-depth sweep of the best spread workload — the reported
    // speedup curve whose knee is the channel count.
    let mut qd_sweep = Vec::new();
    let mut depth = 1u32;
    let mut qd1 = 0.0_f64;
    while depth <= cfg.probe_depth {
        let rate = steady_rate(dev, cfg, 0, best_stride, span, depth)?;
        if depth == 1 {
            qd1 = rate;
        }
        qd_sweep.push(QdPoint {
            queue_depth: depth,
            iops: rate,
            speedup_vs_qd1: if qd1 > 0.0 && qd1.is_finite() {
                rate / qd1
            } else {
                1.0
            },
        });
        depth *= 2;
    }

    Ok(ParallelProbe {
        qd_sweep,
        pinned_deep,
        pinned_serial,
        spread_deep,
    })
}

/// Sequentially (re)write `[offset, offset + len)` with large IOs.
fn prefill_sequential(dev: &mut dyn BlockDevice, offset: u64, len: u64) -> Result<()> {
    let chunk = 128 * 1024u64;
    let mut off = offset;
    let end = offset + len;
    while off < end {
        let io = chunk.min(end - off);
        dev.write(off, io)?;
        off += io;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(param: u64, mean_ns: f64) -> SweepPoint {
        SweepPoint { param, mean_ns }
    }

    #[test]
    fn alignment_fit_finds_granularity_and_factor() {
        // Samsung-shaped sweep: 18 ms aligned, 32 ms misaligned, clean
        // again at 16 KB (§5.2).
        let points = vec![
            pt(0, 18e6),
            pt(512, 32e6),
            pt(1024, 32e6),
            pt(4096, 32e6),
            pt(8192, 32e6),
            pt(16384, 18.2e6),
        ];
        let (g, f) = fit_alignment(&points);
        assert_eq!(g, 16384);
        assert!((f - 32.0 / 18.0).abs() < 0.01, "factor {f}");
    }

    #[test]
    fn alignment_fit_handles_clean_devices() {
        let points = vec![pt(0, 1e6), pt(512, 1.02e6), pt(1024, 0.99e6)];
        assert_eq!(fit_alignment(&points), (0, 1.0));
        assert_eq!(fit_alignment(&[]), (0, 1.0));
    }

    #[test]
    fn alignment_fit_all_shifts_dirty_means_io_size_granularity() {
        let points = vec![pt(0, 1e6), pt(512, 2e6), pt(1024, 2e6), pt(2048, 2e6)];
        let (g, f) = fit_alignment(&points);
        assert_eq!(g, 4096, "granularity = 2 x largest swept shift");
        assert!((f - 2.0).abs() < 1e-9);
    }

    #[test]
    fn probe_traces_wrap_inside_the_span() {
        let t = probe_trace("d", 0, 4096, 16384, 10, 2048);
        assert_eq!(t.len(), 10);
        assert!(t
            .records
            .iter()
            .all(|r| r.lba * 512 < 16384 && r.sectors == 4));
        assert!(t.is_time_ordered());
        // Pinned trace: stride 0 keeps every read at the same block.
        let p = probe_trace("d", 0, 0, 2048, 5, 2048);
        assert!(p.records.iter().all(|r| r.lba == 0));
    }

    #[test]
    fn measurement_serializes_and_baselines_interpolate() {
        let meas = CalibrationMeasurement {
            device: "x".into(),
            capacity_bytes: 1 << 20,
            granularity_sr: vec![pt(512, 1e5), pt(2048, 2e5)],
            granularity_rr: vec![pt(512, 1e5)],
            granularity_sw: vec![pt(512, 3e5)],
            granularity_rw: vec![pt(512, 4e5)],
            alignment_rw: vec![],
            qd_sweep: vec![],
            pinned_iops_deep: 0.0,
            pinned_iops_serial: 0.0,
            spread_iops_deep: 0.0,
            probe_bytes: 2048,
        };
        let json = serde_json::to_string(&meas).unwrap();
        let back: CalibrationMeasurement = serde_json::from_str(&json).unwrap();
        assert_eq!(back.granularity_sr, meas.granularity_sr);
        assert_eq!(back.baseline_ns("SR", 1280), Some(150_000.0));
        assert_eq!(back.baseline_ns("??", 512), None);
    }
}
