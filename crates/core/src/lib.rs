//! # uflip-core — the uFLIP benchmark
//!
//! The primary contribution of *uFLIP: Understanding Flash IO Patterns*
//! (CIDR 2009): a component benchmark made of **nine micro-benchmarks**
//! over IO patterns (§3.2) plus the **benchmarking methodology** that
//! makes measuring flash devices meaningful (§4).
//!
//! ## Structure (mirrors the paper)
//!
//! * [`executor`] — runs a pattern against a [`uflip_device::BlockDevice`]
//!   and records the response time of every IO (design principle 1);
//!   includes the virtual-time interleaver for parallel patterns and a
//!   thread-based executor for real devices.
//! * [`run`] / [`stats`] — runs, experiments and their statistics
//!   (min / max / mean / standard deviation, computed over the IOs after
//!   the `IOIgnore` warm-up prefix).
//! * [`micro`] — the nine micro-benchmarks: Granularity, Alignment,
//!   Locality, Partitioning, Order, Parallelism, Mix, Pause, Bursts —
//!   each "a collection of related experiments over the baseline
//!   patterns" with a single varying parameter.
//! * [`replay`] — beyond the paper: feed a captured or generated
//!   [`uflip_trace::Trace`] back through the submit/poll executor,
//!   timing-faithful or open-loop with a queue-depth sweep.
//! * [`calibrate`] — beyond the paper: run a reduced plan of the
//!   micro-benchmarks against *any* device and fit the result into a
//!   serializable `DeviceProfile` (measured latency curves, alignment
//!   penalty, channel count) — the estimation-from-microbenchmarks
//!   approach of the internal-parallelism literature (PAPERS.md).
//! * [`methodology`] — §4: device-state enforcement (random writes of
//!   random size over the whole device), start-up/running-phase
//!   detection and the derivation of `IOIgnore`/`IOCount`, inter-run
//!   pause calibration (the SR–RW–SR experiment of Figure 5), and
//!   benchmark plans that group sequential-write experiments and insert
//!   state resets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod executor;
pub mod experiment;
pub mod methodology;
pub mod micro;
pub(crate) mod observe;
pub mod policy;
pub mod replay;
pub mod run;
pub mod slab;
pub mod stats;
pub mod suite;

pub use calibrate::{
    calibrate, fit as fit_profile, measure as measure_device, CalibrationConfig,
    CalibrationMeasurement, CalibrationOutcome,
};
pub use executor::{
    execute_mixed, execute_mixed_observed, execute_mixed_with_policy, execute_parallel,
    execute_parallel_observed, execute_parallel_with_policy, execute_run, execute_run_observed,
    execute_run_with_policy,
};
pub use experiment::{Experiment, ExperimentResult, Workload};
pub use policy::{ExhaustionAction, IoPolicy};
pub use replay::{replay_trace, replay_trace_observed, replay_trace_with_policy, ReplayMode};
pub use run::RunResult;
pub use stats::{RunStats, StreamingStats};
pub use suite::{
    execute_plan, execute_plan_observed, execute_plan_sharded, execute_plan_sharded_observed,
    full_suite, run_full_suite, run_full_suite_observed, run_full_suite_sharded,
    run_full_suite_sharded_observed, SuiteOptions, SuiteResult,
};

/// Result alias shared with the device layer.
pub type Result<T> = std::result::Result<T, uflip_device::DeviceError>;
