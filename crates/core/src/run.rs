//! Run results: the per-IO response-time trace of one pattern execution.

use crate::stats::RunStats;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The result of executing one pattern (a *run* in the paper's
/// terminology): the full response-time trace plus bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Pattern label (e.g. `RW`, `4SR/1RW`, `SW(x4)`).
    pub label: String,
    /// Response time of each IO, in submission order.
    pub rts: Vec<Duration>,
    /// Warm-up prefix excluded from [`RunResult::summary`].
    pub io_ignore: u64,
    /// Device-observed elapsed time for the whole run (includes pauses).
    pub elapsed: Duration,
}

impl RunResult {
    /// Create a run result.
    pub fn new(
        label: impl Into<String>,
        rts: Vec<Duration>,
        io_ignore: u64,
        elapsed: Duration,
    ) -> Self {
        RunResult {
            label: label.into(),
            rts,
            io_ignore,
            elapsed,
        }
    }

    /// Statistics over the running phase (after `io_ignore`), the way
    /// the paper summarizes runs (§4.2: "we must ignore the start-up
    /// phase when summarizing the results of each run").
    pub fn summary(&self) -> Option<RunStats> {
        let start = (self.io_ignore as usize).min(self.rts.len());
        RunStats::from_rts(&self.rts[start..])
    }

    /// Statistics over *all* IOs including the start-up phase — what a
    /// naive benchmark would report (the dashed line of Figure 3).
    pub fn summary_all(&self) -> Option<RunStats> {
        RunStats::from_rts(&self.rts)
    }

    /// Running-phase statistics via the constant-memory
    /// [`crate::stats::StreamingStats`] path: exact count/min/max/mean/
    /// stddev/total, histogram-approximated percentiles. Exists so the
    /// streaming path is exercised against [`RunResult::summary`] on
    /// real runs; prefer `summary` when the `rts` vector is in hand.
    pub fn summary_streaming(&self) -> Option<RunStats> {
        let start = (self.io_ignore as usize).min(self.rts.len());
        let mut s = crate::stats::StreamingStats::new();
        for rt in &self.rts[start..] {
            s.record(*rt);
        }
        s.finish()
    }

    /// Running average including everything up to IO `i` (Figure 3's
    /// "Avg(rt) incl." curve).
    pub fn running_average(&self) -> Vec<Duration> {
        let mut out = Vec::with_capacity(self.rts.len());
        let mut sum = 0u128;
        for (i, rt) in self.rts.iter().enumerate() {
            sum += rt.as_nanos();
            out.push(Duration::from_nanos((sum / (i as u128 + 1)) as u64));
        }
        out
    }

    /// Running average excluding the start-up prefix (Figure 3's
    /// "Avg(rt) excl." curve); the first `io_ignore` entries repeat the
    /// first computed value for plot alignment.
    pub fn running_average_excluding(&self) -> Vec<Duration> {
        let skip = (self.io_ignore as usize).min(self.rts.len());
        let mut out = vec![Duration::ZERO; self.rts.len()];
        let mut sum = 0u128;
        for (i, rt) in self.rts.iter().enumerate().skip(skip) {
            sum += rt.as_nanos();
            out[i] = Duration::from_nanos((sum / (i - skip + 1) as u128) as u64);
        }
        let head = out.get(skip).copied().unwrap_or(Duration::ZERO);
        for slot in out.iter_mut().take(skip) {
            *slot = head;
        }
        out
    }

    /// Number of IOs in the run.
    pub fn len(&self) -> usize {
        self.rts.len()
    }

    /// True if the run recorded no IOs.
    pub fn is_empty(&self) -> bool {
        self.rts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn summary_skips_ignore_prefix() {
        let r = RunResult::new("RW", vec![ms(1), ms(1), ms(100), ms(100)], 2, ms(202));
        let s = r.summary().unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, ms(100));
        let all = r.summary_all().unwrap();
        assert_eq!(all.count, 4);
        assert!(
            all.mean < s.mean,
            "including cheap start-up lowers the average"
        );
    }

    #[test]
    fn running_averages_match_figure3_semantics() {
        let r = RunResult::new("RW", vec![ms(1), ms(1), ms(10), ms(10)], 2, ms(22));
        let incl = r.running_average();
        assert_eq!(incl[0], ms(1));
        assert_eq!(incl[3], ms(11) / 2); // (1+1+10+10)/4 = 5.5 ms
        let excl = r.running_average_excluding();
        assert_eq!(excl[2], ms(10));
        assert_eq!(excl[3], ms(10));
        assert_eq!(excl[0], ms(10), "prefix padded with first excluded value");
    }

    #[test]
    fn over_long_ignore_is_safe() {
        let r = RunResult::new("SR", vec![ms(1)], 10, ms(1));
        assert!(r.summary().is_none());
        assert_eq!(r.running_average_excluding(), vec![Duration::ZERO]);
    }

    #[test]
    fn serde_round_trip() {
        let r = RunResult::new("SW", vec![ms(2), ms(3)], 0, ms(5));
        let json = serde_json::to_string(&r).unwrap();
        let back: RunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rts, r.rts);
        assert_eq!(back.label, "SW");
    }
}
