//! Shared plumbing for the observed (`*_observed`) executor entry
//! points.
//!
//! Every executor in this crate has an observed variant that takes a
//! [`uflip_obs::SinkHandle`]: it attaches the sink to the device (so
//! NAND, FTL, queue and host-IO counters flow from the layers below)
//! and, after each run, records the run's response times into the
//! sink's latency histograms and emits a per-workload counter delta
//! ([`uflip_obs::WorkloadMetrics`] — host IO, bytes programmed/erased,
//! write amplification).
//!
//! The plain entry points delegate to the observed ones with
//! [`SinkHandle::null`], so the unobserved path stays the default and
//! pays nothing: one `is_enabled()` test per run, zero per IO (the
//! per-IO guards live in the instrumented layers and are cached
//! `bool`s). Response times recorded here are exactly the ones the
//! run's [`crate::RunStats`] summarizes — the running phase, after the
//! `io_ignore` warm-up prefix — so histogram quantiles and exact
//! percentiles describe the same population.

use crate::run::RunResult;
use uflip_obs::{CounterSnapshot, LatencyClass, SinkHandle, WorkloadMetrics};

/// Read the sink's current counter totals.
pub(crate) fn counters_now(sink: &SinkHandle) -> CounterSnapshot {
    let mut snap = CounterSnapshot::new();
    sink.counters(&mut snap);
    snap
}

/// Emit a per-workload metrics record from the counter movement since
/// `before` (captured with [`counters_now`] just before the run).
pub(crate) fn emit_workload_delta(sink: &SinkHandle, label: &str, before: &CounterSnapshot) {
    let after = counters_now(sink);
    sink.workload(label, WorkloadMetrics::from_delta(&after.since(before)));
}

/// Record a run's running-phase response times (the same slice
/// [`RunResult::summary`] summarizes) under one latency class.
pub(crate) fn record_run_latencies(sink: &SinkHandle, class: LatencyClass, run: &RunResult) {
    let start = (run.io_ignore as usize).min(run.rts.len());
    for rt in &run.rts[start..] {
        sink.latency(class, rt.as_nanos() as u64);
    }
}
