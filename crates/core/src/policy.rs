//! [`IoPolicy`]: retry, backoff and timeout semantics for a run.
//!
//! The paper benchmarks healthy devices, so the executors historically
//! treated every device error as fatal. Real measurement campaigns
//! meet transient faults — media errors the firmware surfaces, bus
//! hiccups, injected faults from a
//! [`uflip_device::FaultPlan`] — and a benchmark harness
//! has to decide *on behalf of the run* whether to retry, how long to
//! back off, and when to give up. [`IoPolicy`] makes that decision
//! explicit, per run, and deterministic:
//!
//! * a bounded **retry budget** per IO, with exponential backoff and
//!   seeded jitter (backoff is device [`idle`](uflip_device::BlockDevice::idle)
//!   time on the virtual clock — background reclamation runs during
//!   it, exactly as during any host think-time);
//! * an observational **timeout**: completions slower than the bound
//!   increment [`CounterId::IoTimeouts`] (simulated IOs always
//!   complete, so the timeout observes rather than cancels);
//! * an **exhaustion action**: abort the run (default) or degrade —
//!   record the failed IO's accumulated backoff as its response time
//!   and move on, the way a measurement campaign logs a bad sector and
//!   keeps going.
//!
//! Only *transient* errors ([`uflip_device::DeviceError::is_transient`])
//! are retried; wear-out, capacity and protocol errors propagate
//! immediately. Queue back-pressure
//! ([`uflip_device::DeviceError::QueueFull`]) is never consumed by the
//! policy — the event loops handle it as flow control.
//!
//! The noop policy ([`IoPolicy::none`]) is the default everywhere and
//! leaves every executor on its historical code path, bit-identical to
//! earlier releases.

use crate::Result;
use std::time::Duration;
use uflip_device::{BlockDevice, DeviceError, IoQueue, Token};
use uflip_obs::{CounterId, LatencyClass, SinkHandle};
use uflip_patterns::{IoRequest, Mode};

/// What to do when an IO exhausts its retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExhaustionAction {
    /// Propagate the error and abort the run.
    #[default]
    Abort,
    /// Count the exhaustion, record the IO's accumulated backoff as
    /// its response time, and continue the run without the IO.
    Degrade,
}

/// Per-run retry/timeout policy (see the module docs). `Copy`, so runs
/// and suite options can carry it by value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoPolicy {
    /// Retry budget per IO (0 = never retry).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff_base: Duration,
    /// Multiplier applied per successive retry (2 = doubling).
    pub backoff_factor: u32,
    /// Upper bound on any single backoff (jitter excluded).
    pub backoff_cap: Duration,
    /// Seed of the jitter stream; equal seeds give equal backoff
    /// sequences, keeping retried runs reproducible.
    pub jitter_seed: u64,
    /// Response times above this count as timeouts (observational).
    pub timeout: Option<Duration>,
    /// What to do when the retry budget runs out.
    pub on_exhaustion: ExhaustionAction,
}

impl Default for IoPolicy {
    /// The standard retrying policy: 4 retries, 100 µs doubling
    /// backoff capped at 10 ms, abort on exhaustion, no timeout.
    fn default() -> Self {
        IoPolicy {
            max_retries: 4,
            backoff_base: Duration::from_micros(100),
            backoff_factor: 2,
            backoff_cap: Duration::from_millis(10),
            jitter_seed: 0x0BAD_F00D,
            timeout: None,
            on_exhaustion: ExhaustionAction::Abort,
        }
    }
}

impl IoPolicy {
    /// The noop policy: no retries, no timeout. Executors given it
    /// take their historical code paths unchanged.
    pub fn none() -> Self {
        IoPolicy {
            max_retries: 0,
            timeout: None,
            ..IoPolicy::default()
        }
    }

    /// Whether this policy changes nothing (see [`IoPolicy::none`]).
    pub fn is_noop(&self) -> bool {
        self.max_retries == 0 && self.timeout.is_none()
    }

    /// Backoff before retry number `attempt` (1-based): base times
    /// factor^(attempt−1), capped, plus seeded jitter of up to a
    /// quarter of the base (drawn from `rng`, SplitMix64).
    pub fn backoff(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        let factor = u64::from(self.backoff_factor.max(1)).saturating_pow(exp);
        let base = Duration::from_nanos(
            (self.backoff_base.as_nanos() as u64)
                .saturating_mul(factor)
                .min(self.backoff_cap.as_nanos() as u64),
        );
        let jitter_range = self.backoff_base.as_nanos() as u64 / 4;
        if jitter_range == 0 {
            return base;
        }
        *rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        base + Duration::from_nanos(z % (jitter_range + 1))
    }

    /// Parse a `--io-policy` flag value.
    ///
    /// Accepts `none`, `default`, or a comma-separated list of
    /// `retries=N`, `base-us=N`, `factor=N`, `cap-ms=N`,
    /// `timeout-ms=N`, `seed=N` and the bare word `degrade`, applied
    /// over the default policy.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        match s {
            "none" => return Ok(IoPolicy::none()),
            "default" => return Ok(IoPolicy::default()),
            _ => {}
        }
        let mut policy = IoPolicy::default();
        for part in s.split(',') {
            let part = part.trim();
            if part == "degrade" {
                policy.on_exhaustion = ExhaustionAction::Degrade;
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad io-policy element `{part}` (expected key=value)"))?;
            let n: u64 = value
                .parse()
                .map_err(|_| format!("bad io-policy value in `{part}`"))?;
            // `n` comes straight from the command line: reject values
            // that would silently truncate instead of wrapping them.
            let narrow = |n: u64| -> std::result::Result<u32, String> {
                u32::try_from(n).map_err(|_| format!("io-policy value out of range in `{part}`"))
            };
            match key {
                "retries" => policy.max_retries = narrow(n)?,
                "base-us" => policy.backoff_base = Duration::from_micros(n),
                "factor" => policy.backoff_factor = narrow(n)?,
                "cap-ms" => policy.backoff_cap = Duration::from_millis(n),
                "timeout-ms" => policy.timeout = Some(Duration::from_millis(n)),
                "seed" => policy.jitter_seed = n,
                other => return Err(format!("unknown io-policy key `{other}`")),
            }
        }
        Ok(policy)
    }
}

/// Observe a completed IO's response time against the policy's timeout.
pub(crate) fn observe_timeout(policy: &IoPolicy, rt: Duration, sink: &SinkHandle, enabled: bool) {
    if enabled {
        if let Some(t) = policy.timeout {
            if rt > t {
                sink.add(CounterId::IoTimeouts, 1);
            }
        }
    }
}

/// Issue one synchronous IO under a policy: retry transient failures
/// with backoff (spent as device idle time), record retried successes
/// under [`LatencyClass::Retry`], observe the timeout, and apply the
/// exhaustion action. Returns the IO's response time — for a degraded
/// IO, the backoff it accumulated before being given up on.
pub(crate) fn issue_with_policy(
    dev: &mut dyn BlockDevice,
    io: &IoRequest,
    policy: &IoPolicy,
    rng: &mut u64,
    sink: &SinkHandle,
    enabled: bool,
) -> Result<Duration> {
    let mut attempt = 0u32;
    let mut waited = Duration::ZERO;
    loop {
        let res = match io.mode {
            Mode::Read => dev.read(io.offset, io.size),
            Mode::Write => dev.write(io.offset, io.size),
        };
        match res {
            Ok(rt) => {
                let total = waited + rt;
                observe_timeout(policy, total, sink, enabled);
                if attempt > 0 && enabled {
                    sink.latency(LatencyClass::Retry, total.as_nanos() as u64);
                }
                return Ok(total);
            }
            Err(e) if e.is_transient() && attempt < policy.max_retries => {
                attempt += 1;
                if enabled {
                    sink.add(CounterId::IoRetries, 1);
                }
                let backoff = policy.backoff(attempt, rng);
                dev.idle(backoff);
                waited += backoff;
            }
            Err(e) => {
                if e.is_transient() && policy.max_retries > 0 {
                    if enabled {
                        sink.add(CounterId::RetryExhaustions, 1);
                    }
                    if policy.on_exhaustion == ExhaustionAction::Degrade {
                        return Ok(waited);
                    }
                }
                return Err(e);
            }
        }
    }
}

/// Outcome of a policy-mediated queued submission.
pub(crate) enum SubmitOutcome {
    /// The IO is in flight under this token; its effective submission
    /// instant is the intended one plus any retry backoff (response
    /// times computed against the *intended* instant therefore include
    /// the backoff, as they should).
    Submitted(Token),
    /// The queue is full — back-pressure for the caller's event loop,
    /// never consumed by the policy.
    Full,
    /// The IO exhausted its budget under a degrading policy; it never
    /// reached the device. The payload is the backoff it accumulated —
    /// its recorded response time.
    Degraded(Duration),
}

/// Submit one queued IO under a policy: transient submit-time
/// rejections (injected faults) retry with backoff applied to the
/// submission instant; queue-full rejections pass through untouched.
pub(crate) fn submit_with_policy(
    queue: &mut dyn IoQueue,
    io: &IoRequest,
    at: Duration,
    policy: &IoPolicy,
    rng: &mut u64,
    sink: &SinkHandle,
    enabled: bool,
) -> Result<SubmitOutcome> {
    let mut attempt = 0u32;
    let mut waited = Duration::ZERO;
    loop {
        match queue.submit(io, at + waited) {
            Ok(token) => {
                if attempt > 0 && enabled {
                    sink.latency(LatencyClass::Retry, waited.as_nanos() as u64);
                }
                return Ok(SubmitOutcome::Submitted(token));
            }
            Err(DeviceError::QueueFull { .. }) => return Ok(SubmitOutcome::Full),
            Err(e) if e.is_transient() && attempt < policy.max_retries => {
                attempt += 1;
                if enabled {
                    sink.add(CounterId::IoRetries, 1);
                }
                waited += policy.backoff(attempt, rng);
            }
            Err(e) => {
                if e.is_transient() && policy.max_retries > 0 {
                    if enabled {
                        sink.add(CounterId::RetryExhaustions, 1);
                    }
                    if policy.on_exhaustion == ExhaustionAction::Degrade {
                        return Ok(SubmitOutcome::Degraded(waited));
                    }
                }
                return Err(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_detection() {
        assert!(IoPolicy::none().is_noop());
        assert!(!IoPolicy::default().is_noop());
        let timeout_only = IoPolicy {
            max_retries: 0,
            timeout: Some(Duration::from_millis(1)),
            ..IoPolicy::default()
        };
        assert!(!timeout_only.is_noop());
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = IoPolicy {
            backoff_base: Duration::from_micros(100),
            backoff_factor: 2,
            backoff_cap: Duration::from_micros(350),
            ..IoPolicy::default()
        };
        let mut rng = 1u64;
        let jitter_max = Duration::from_micros(25);
        let b1 = policy.backoff(1, &mut rng);
        let b2 = policy.backoff(2, &mut rng);
        let b3 = policy.backoff(3, &mut rng);
        assert!(b1 >= Duration::from_micros(100) && b1 <= Duration::from_micros(100) + jitter_max);
        assert!(b2 >= Duration::from_micros(200) && b2 <= Duration::from_micros(200) + jitter_max);
        assert!(b3 >= Duration::from_micros(350) && b3 <= Duration::from_micros(350) + jitter_max);
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let policy = IoPolicy::default();
        let (mut a, mut b) = (7u64, 7u64);
        for attempt in 1..=4 {
            assert_eq!(
                policy.backoff(attempt, &mut a),
                policy.backoff(attempt, &mut b)
            );
        }
        let mut c = 8u64;
        let seq_a: Vec<_> = (1..=4).map(|n| policy.backoff(n, &mut a)).collect();
        let seq_c: Vec<_> = (1..=4).map(|n| policy.backoff(n, &mut c)).collect();
        assert_ne!(seq_a, seq_c, "different seeds jitter differently");
    }

    #[test]
    fn parse_accepts_the_flag_grammar() {
        assert!(IoPolicy::parse("none").unwrap().is_noop());
        assert_eq!(IoPolicy::parse("default").unwrap(), IoPolicy::default());
        let p = IoPolicy::parse("retries=7,base-us=50,cap-ms=2,timeout-ms=100,degrade").unwrap();
        assert_eq!(p.max_retries, 7);
        assert_eq!(p.backoff_base, Duration::from_micros(50));
        assert_eq!(p.backoff_cap, Duration::from_millis(2));
        assert_eq!(p.timeout, Some(Duration::from_millis(100)));
        assert_eq!(p.on_exhaustion, ExhaustionAction::Degrade);
        assert!(IoPolicy::parse("retries=x").is_err());
        assert!(IoPolicy::parse("bogus=1").is_err());
        assert!(IoPolicy::parse("retries").is_err());
    }
}
