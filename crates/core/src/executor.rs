//! Pattern executors: drive a device with a pattern, capture every IO's
//! response time.
//!
//! Three executors cover the paper's three pattern classes:
//!
//! * [`execute_run`] — basic patterns (one process, synchronous IOs;
//!   the timing function's delays become device idle time);
//! * [`execute_mixed`] — mixed patterns (the interleaved sequence is
//!   itself a single synchronous stream, §3.1);
//! * [`execute_parallel`] — parallel patterns: `ParallelDegree`
//!   processes each issue their next IO as soon as their previous one
//!   completes.
//!
//! ## How parallel patterns are served
//!
//! When the device exposes an [`uflip_device::IoQueue`] (every
//! [`uflip_device::SimDevice`] does), `execute_parallel` drives it as a
//! **submit/poll event loop**: process arrivals are submitted into the
//! device's NCQ-style queue in virtual-time order, and the device
//! schedules each IO onto the busy tracks of the flash channels it
//! touches. Queueing delay — and any *benefit* of concurrency on a
//! multi-channel device — is therefore **emergent** from the device
//! model. At the default queue depth of 1 the device serves one IO at
//! a time and the behaviour of the paper's measurements is reproduced
//! exactly: response times include time queued behind other processes,
//! which is how "parallel execution with a high degree can cause
//! multiple sequential write patterns to degenerate" (§5.2) and why
//! Hint 7 finds no benefit in concurrency on 2008 devices. Sweeping
//! [`uflip_patterns::ParallelSpec::with_queue_depth`] ≥ the channel
//! count shows what those devices *could* have delivered.
//!
//! Devices without a queue (e.g. [`uflip_device::MemDevice`]) fall
//! back to the same virtual-time interleaving computed host-side, with
//! the device serving one IO at a time — **simulated** queueing rather
//! than emergent, equivalent to queue depth 1.
//!
//! ## Wall-clock queues
//!
//! Real devices ([`uflip_device::DirectIoFile`]) expose the same
//! [`uflip_device::IoQueue`] interface over a **wall clock** (a
//! threaded worker pool — [`uflip_device::ThreadedIoQueue`]), and the
//! same event loop drives them. The loop's logic tolerates the three
//! wall-clock relaxations documented on the trait: it keeps submitting
//! when `next_completion` is `None` with IOs in flight (the queue
//! stays full instead of stalling), it accepts completions that land
//! "in the past" relative to later submissions (the unblocked
//! process's next IO may legitimately predate an already-submitted
//! future-dated IO — submission times are *not* forced monotone on
//! real devices), and a blocking `poll` simply stands in for "advance
//! virtual time to the next completion". Response times remain
//! completion − submission on the device's own clock in both worlds.
//!
//! [`execute_parallel_threads`] remains available for measuring with
//! independent OS threads over per-process device handles (one file
//! descriptor per process, the OS scheduler doing the interleaving)
//! rather than a shared submission queue.

use crate::observe;
use crate::policy::{self, IoPolicy, SubmitOutcome};
use crate::run::RunResult;
use crate::slab::TokenSlab;
use crate::Result;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;
use uflip_device::{BlockDevice, DeviceError, Token};
use uflip_patterns::{IoRequest, MixSpec, Mode, ParallelSpec, PatternSpec};

fn issue(dev: &mut dyn BlockDevice, io: &IoRequest) -> Result<Duration> {
    match io.mode {
        Mode::Read => dev.read(io.offset, io.size),
        Mode::Write => dev.write(io.offset, io.size),
    }
}

/// Execute a basic pattern synchronously. Returns the per-IO trace.
pub fn execute_run(dev: &mut dyn BlockDevice, spec: &PatternSpec) -> Result<RunResult> {
    debug_assert!(
        spec.validate().is_ok(),
        "invalid spec: {:?}",
        spec.validate()
    );
    let start = dev.now();
    let mut rts = Vec::with_capacity(spec.io_count as usize);
    for io in spec.iter() {
        if io.submit_delay > Duration::ZERO {
            dev.idle(io.submit_delay);
        }
        rts.push(issue(dev, &io)?);
    }
    Ok(RunResult::new(
        spec.code(),
        rts,
        spec.io_ignore,
        dev.now() - start,
    ))
}

/// Execute a mixed pattern, returning the run plus each IO's process
/// tag (0 = sub-pattern a, 1 = b).
///
/// Mixed streams are a serial dependency chain — each IO is submitted
/// only after the previous completes — so they deliberately use the
/// synchronous `read`/`write` interface even on queue-capable devices.
/// The queue engine admits against per-channel busy tracks, where
/// background work (log merges, reclamation) parks time that the
/// synchronous path charges differently; riding the queue at depth 1
/// would therefore let a GC tail from one write delay the next IO and
/// change measured response times. Keeping the synchronous path keeps
/// the Mix micro-benchmark bit-stable with every earlier result.
pub fn execute_mixed(dev: &mut dyn BlockDevice, mix: &MixSpec) -> Result<(RunResult, Vec<u16>)> {
    let start = dev.now();
    let mut rts = Vec::with_capacity(mix.io_count as usize);
    let mut procs = Vec::with_capacity(mix.io_count as usize);
    for io in mix.iter() {
        if io.submit_delay > Duration::ZERO {
            dev.idle(io.submit_delay);
        }
        rts.push(issue(dev, &io)?);
        procs.push(io.process);
    }
    Ok((RunResult::new(mix.name(), rts, 0, dev.now() - start), procs))
}

/// Execute a parallel pattern.
///
/// Each process is a synchronous loop: it submits its next IO the
/// moment its previous IO completes. The recorded response time of an
/// IO is *completion − submission*, i.e. it includes time spent queued
/// behind other processes' IOs — exactly what a host thread would
/// measure.
///
/// Queue-capable devices are driven through their submit/poll
/// [`IoQueue`] (see the module docs); others fall back to host-side
/// serial interleaving, equivalent to queue depth 1.
pub fn execute_parallel(dev: &mut dyn BlockDevice, par: &ParallelSpec) -> Result<RunResult> {
    if dev.io_queue().is_some() {
        execute_parallel_queued(dev, par)
    } else {
        execute_parallel_serial(dev, par)
    }
}

/// [`execute_run`] under an [`IoPolicy`]: transient IO failures are
/// retried with backoff (spent as device idle time), slow completions
/// are counted as timeouts, and a degrading policy records an
/// exhausted IO's accumulated backoff instead of aborting. With the
/// noop policy this *is* [`execute_run`] — same code path, bit-stable.
pub fn execute_run_with_policy(
    dev: &mut dyn BlockDevice,
    spec: &PatternSpec,
    policy: &IoPolicy,
    sink: &uflip_obs::SinkHandle,
) -> Result<RunResult> {
    if policy.is_noop() {
        return execute_run(dev, spec);
    }
    let enabled = sink.is_enabled();
    let mut rng = policy.jitter_seed;
    let start = dev.now();
    let mut rts = Vec::with_capacity(spec.io_count as usize);
    for io in spec.iter() {
        if io.submit_delay > Duration::ZERO {
            dev.idle(io.submit_delay);
        }
        rts.push(policy::issue_with_policy(
            dev, &io, policy, &mut rng, sink, enabled,
        )?);
    }
    Ok(RunResult::new(
        spec.code(),
        rts,
        spec.io_ignore,
        dev.now() - start,
    ))
}

/// [`execute_mixed`] under an [`IoPolicy`] (see
/// [`execute_run_with_policy`] for the semantics).
pub fn execute_mixed_with_policy(
    dev: &mut dyn BlockDevice,
    mix: &MixSpec,
    policy: &IoPolicy,
    sink: &uflip_obs::SinkHandle,
) -> Result<(RunResult, Vec<u16>)> {
    if policy.is_noop() {
        return execute_mixed(dev, mix);
    }
    let enabled = sink.is_enabled();
    let mut rng = policy.jitter_seed;
    let start = dev.now();
    let mut rts = Vec::with_capacity(mix.io_count as usize);
    let mut procs = Vec::with_capacity(mix.io_count as usize);
    for io in mix.iter() {
        if io.submit_delay > Duration::ZERO {
            dev.idle(io.submit_delay);
        }
        rts.push(policy::issue_with_policy(
            dev, &io, policy, &mut rng, sink, enabled,
        )?);
        procs.push(io.process);
    }
    Ok((RunResult::new(mix.name(), rts, 0, dev.now() - start), procs))
}

/// [`execute_parallel`] under an [`IoPolicy`]: submit-time transient
/// rejections retry with the backoff applied to the submission
/// instant (the response time, completion − intended submission,
/// includes it); queue back-pressure is handled by the event loop as
/// always. With the noop policy this *is* [`execute_parallel`].
pub fn execute_parallel_with_policy(
    dev: &mut dyn BlockDevice,
    par: &ParallelSpec,
    policy: &IoPolicy,
    sink: &uflip_obs::SinkHandle,
) -> Result<RunResult> {
    if policy.is_noop() {
        return execute_parallel(dev, par);
    }
    if dev.io_queue().is_some() {
        execute_parallel_queued_with_policy(dev, par, policy, sink)
    } else {
        execute_parallel_serial_with_policy(dev, par, policy, sink)
    }
}

/// Observed [`execute_run`]: attach `sink` to the device, execute the
/// pattern, then record the running-phase response times under the
/// pattern's latency class and emit the run's counter delta as a
/// [`uflip_obs::WorkloadMetrics`] record. With a null sink this is
/// exactly [`execute_run`] (the sink attach is a no-op handle store).
pub fn execute_run_observed(
    dev: &mut dyn BlockDevice,
    spec: &PatternSpec,
    sink: &uflip_obs::SinkHandle,
) -> Result<RunResult> {
    dev.set_sink(sink.clone());
    let observed = sink.is_enabled();
    let before = observed.then(|| observe::counters_now(sink));
    let run = execute_run(dev, spec)?;
    if observed {
        let class = match spec.mode {
            Mode::Read => uflip_obs::LatencyClass::Read,
            Mode::Write => uflip_obs::LatencyClass::Write,
        };
        observe::record_run_latencies(sink, class, &run);
        if let Some(before) = &before {
            observe::emit_workload_delta(sink, &run.label, before);
        }
    }
    Ok(run)
}

/// Observed [`execute_mixed`]: as [`execute_run_observed`], with the
/// response times recorded under [`uflip_obs::LatencyClass::Mixed`]
/// (mix runs interleave reads and writes in one stream).
pub fn execute_mixed_observed(
    dev: &mut dyn BlockDevice,
    mix: &MixSpec,
    sink: &uflip_obs::SinkHandle,
) -> Result<(RunResult, Vec<u16>)> {
    dev.set_sink(sink.clone());
    let observed = sink.is_enabled();
    let before = observed.then(|| observe::counters_now(sink));
    let (run, procs) = execute_mixed(dev, mix)?;
    if observed {
        observe::record_run_latencies(sink, uflip_obs::LatencyClass::Mixed, &run);
        if let Some(before) = &before {
            observe::emit_workload_delta(sink, &run.label, before);
        }
    }
    Ok((run, procs))
}

/// Observed [`execute_parallel`]: as [`execute_run_observed`], with
/// the latency class taken from the base pattern's mode (every
/// process replays the same single-mode pattern).
pub fn execute_parallel_observed(
    dev: &mut dyn BlockDevice,
    par: &ParallelSpec,
    sink: &uflip_obs::SinkHandle,
) -> Result<RunResult> {
    dev.set_sink(sink.clone());
    let observed = sink.is_enabled();
    let before = observed.then(|| observe::counters_now(sink));
    let run = execute_parallel(dev, par)?;
    if observed {
        let class = match par.base.mode {
            Mode::Read => uflip_obs::LatencyClass::Read,
            Mode::Write => uflip_obs::LatencyClass::Write,
        };
        observe::record_run_latencies(sink, class, &run);
        if let Some(before) = &before {
            observe::emit_workload_delta(sink, &run.label, before);
        }
    }
    Ok(run)
}

/// Drive a queue-capable device with the parallel pattern's processes.
///
/// On virtual-time devices the event loop maintains one invariant the
/// simulation depends on: **IOs reach the device in non-decreasing
/// virtual submission time**, so FTL state evolves in the same order a
/// real command stream would arrive in. A candidate IO is only
/// submitted while the queue has a free slot *and* no known in-flight
/// completion precedes the candidate's submission (a completion may
/// release a process whose next IO submits earlier); otherwise the
/// earliest completion is retired first. On wall-clock devices the
/// invariant is relaxed rather than enforced — a completion observed
/// late can yield a submission dated before an already-submitted IO,
/// which the device clamps to "now" (see `uflip_device::queue`).
///
/// ## The event calendar
///
/// Runnable processes live in a binary-heap **calendar** keyed by
/// `(submission instant, process index)`: one entry per process whose
/// next IO is ready to go. A process leaves the calendar when its IO is
/// submitted and re-enters when that IO completes (with its next IO's
/// instant). Selecting the next submission is therefore O(log n)
/// instead of the linear scan over every process the loop used to pay
/// per iteration — with ties broken toward the lower process index,
/// exactly the first-minimal element `min_by_key` picked, so the
/// schedule is bit-identical to the scan
/// ([`execute_parallel_queued_reference`] keeps the old loop as the
/// behavioral reference).
fn execute_parallel_queued(dev: &mut dyn BlockDevice, par: &ParallelSpec) -> Result<RunResult> {
    let specs = par.process_specs();
    let total_ios: usize = specs.iter().map(|s| s.io_count as usize).sum();
    let mut streams: Vec<_> = specs.into_iter().map(|s| s.iter()).collect();
    let n = streams.len();
    let base = dev.now();
    let mut ready: Vec<Duration> = vec![base; n];
    let mut pending: Vec<Option<IoRequest>> = streams.iter_mut().map(|s| s.next()).collect();
    let queue = dev
        .io_queue()
        .ok_or(DeviceError::Internal("device lost its queue mid-run"))?;
    // A spec-level queue depth is a per-run request: remember the
    // device's own depth and restore it once the run drains, so one
    // sweep point cannot silently reconfigure later runs.
    let device_depth = queue.queue_depth();
    if let Some(depth) = par.queue_depth {
        queue.set_queue_depth(depth)?;
    }
    let mut calendar: BinaryHeap<Reverse<(Duration, usize)>> = BinaryHeap::with_capacity(n);
    for (p, io) in pending.iter().enumerate() {
        if let Some(io) = io {
            calendar.push(Reverse((ready[p] + io.submit_delay, p)));
        }
    }
    // Token bookkeeping: submission order index and times per in-flight
    // IO, so completions can be turned into response times and traced
    // back to their process.
    let mut inflight: TokenSlab<(usize, Duration, usize)> = TokenSlab::new();
    let mut rts: Vec<Duration> = Vec::with_capacity(total_ios);
    let mut seq = 0usize;
    let mut last_completion = base;
    loop {
        // Earliest-submitting runnable process, if any.
        let Some(&Reverse((submit, p))) = calendar.peek() else {
            // Nothing left to submit: drain the queue.
            match queue.poll() {
                Some((token, completion)) => {
                    retire(
                        &mut inflight,
                        &mut calendar,
                        &mut ready,
                        &pending,
                        &mut rts,
                        token,
                        completion,
                    );
                    last_completion = last_completion.max(completion);
                    continue;
                }
                None => break,
            }
        };
        // Retire completions that precede this submission: they may
        // unblock a process with an even earlier arrival.
        if let Some(next_done) = queue.next_completion() {
            if next_done <= submit {
                let (token, completion) = queue
                    .poll()
                    .ok_or(DeviceError::Internal("peeked completion vanished"))?;
                retire(
                    &mut inflight,
                    &mut calendar,
                    &mut ready,
                    &pending,
                    &mut rts,
                    token,
                    completion,
                );
                last_completion = last_completion.max(completion);
                continue;
            }
        }
        calendar.pop();
        let io = pending[p]
            .take()
            .ok_or(DeviceError::Internal("calendar entry without an IO"))?;
        match queue.submit(&io, submit) {
            Ok(token) => {
                inflight.insert(token, (p, submit, seq));
                seq += 1;
                rts.push(Duration::ZERO); // placeholder until completion
                pending[p] = streams[p].next();
                // p re-enters the calendar when this IO completes.
            }
            Err(DeviceError::QueueFull { .. }) => {
                // Back-pressure: retire one completion and retry.
                pending[p] = Some(io);
                calendar.push(Reverse((submit, p)));
                let (token, completion) = queue
                    .poll()
                    .ok_or(DeviceError::Internal("full queue with nothing to poll"))?;
                retire(
                    &mut inflight,
                    &mut calendar,
                    &mut ready,
                    &pending,
                    &mut rts,
                    token,
                    completion,
                );
                last_completion = last_completion.max(completion);
            }
            Err(e) => return Err(e),
        }
    }
    if queue.queue_depth() != device_depth {
        queue.set_queue_depth(device_depth)?;
    }
    Ok(RunResult::new(par.name(), rts, 0, last_completion - base))
}

/// Book a completed IO: compute its response time into `rts` (indexed
/// by submission order) and return its process to the calendar with
/// the submission instant of the process's next IO.
#[allow(clippy::too_many_arguments)]
fn retire(
    inflight: &mut TokenSlab<(usize, Duration, usize)>,
    calendar: &mut BinaryHeap<Reverse<(Duration, usize)>>,
    ready: &mut [Duration],
    pending: &[Option<IoRequest>],
    rts: &mut [Duration],
    token: Token,
    completion: Duration,
) {
    let (p, submit, seq) = inflight.remove(token);
    rts[seq] = completion - submit;
    ready[p] = completion;
    if let Some(io) = &pending[p] {
        calendar.push(Reverse((completion + io.submit_delay, p)));
    }
}

/// The policy-aware twin of [`execute_parallel_queued`]: identical
/// event loop, with submissions mediated by
/// [`policy::submit_with_policy`]. Kept separate so the plain loop
/// stays free of policy branches (and bit-stable).
fn execute_parallel_queued_with_policy(
    dev: &mut dyn BlockDevice,
    par: &ParallelSpec,
    policy: &IoPolicy,
    sink: &uflip_obs::SinkHandle,
) -> Result<RunResult> {
    let enabled = sink.is_enabled();
    let mut rng = policy.jitter_seed;
    let specs = par.process_specs();
    let total_ios: usize = specs.iter().map(|s| s.io_count as usize).sum();
    let mut streams: Vec<_> = specs.into_iter().map(|s| s.iter()).collect();
    let n = streams.len();
    let base = dev.now();
    let mut ready: Vec<Duration> = vec![base; n];
    let mut pending: Vec<Option<IoRequest>> = streams.iter_mut().map(|s| s.next()).collect();
    let queue = dev
        .io_queue()
        .ok_or(DeviceError::Internal("device lost its queue mid-run"))?;
    let device_depth = queue.queue_depth();
    if let Some(depth) = par.queue_depth {
        queue.set_queue_depth(depth)?;
    }
    let mut calendar: BinaryHeap<Reverse<(Duration, usize)>> = BinaryHeap::with_capacity(n);
    for (p, io) in pending.iter().enumerate() {
        if let Some(io) = io {
            calendar.push(Reverse((ready[p] + io.submit_delay, p)));
        }
    }
    let mut inflight: TokenSlab<(usize, Duration, usize)> = TokenSlab::new();
    let mut rts: Vec<Duration> = Vec::with_capacity(total_ios);
    let mut seq = 0usize;
    let mut last_completion = base;
    loop {
        let Some(&Reverse((submit, p))) = calendar.peek() else {
            match queue.poll() {
                Some((token, completion)) => {
                    retire(
                        &mut inflight,
                        &mut calendar,
                        &mut ready,
                        &pending,
                        &mut rts,
                        token,
                        completion,
                    );
                    last_completion = last_completion.max(completion);
                    continue;
                }
                None => break,
            }
        };
        if let Some(next_done) = queue.next_completion() {
            if next_done <= submit {
                let (token, completion) = queue
                    .poll()
                    .ok_or(DeviceError::Internal("peeked completion vanished"))?;
                retire(
                    &mut inflight,
                    &mut calendar,
                    &mut ready,
                    &pending,
                    &mut rts,
                    token,
                    completion,
                );
                last_completion = last_completion.max(completion);
                continue;
            }
        }
        calendar.pop();
        let io = pending[p]
            .take()
            .ok_or(DeviceError::Internal("calendar entry without an IO"))?;
        match policy::submit_with_policy(queue, &io, submit, policy, &mut rng, sink, enabled)? {
            SubmitOutcome::Submitted(token) => {
                inflight.insert(token, (p, submit, seq));
                seq += 1;
                rts.push(Duration::ZERO); // placeholder until completion
                pending[p] = streams[p].next();
            }
            SubmitOutcome::Full => {
                pending[p] = Some(io);
                calendar.push(Reverse((submit, p)));
                let (token, completion) = queue
                    .poll()
                    .ok_or(DeviceError::Internal("full queue with nothing to poll"))?;
                retire(
                    &mut inflight,
                    &mut calendar,
                    &mut ready,
                    &pending,
                    &mut rts,
                    token,
                    completion,
                );
                last_completion = last_completion.max(completion);
            }
            SubmitOutcome::Degraded(waited) => {
                // The IO never reached the device: book its backoff as
                // the response time and release its process.
                rts.push(waited);
                seq += 1;
                ready[p] = submit + waited;
                last_completion = last_completion.max(ready[p]);
                pending[p] = streams[p].next();
                if let Some(io) = &pending[p] {
                    calendar.push(Reverse((ready[p] + io.submit_delay, p)));
                }
            }
        }
    }
    // Timeouts are observed over final response times (a queued IO's
    // slowness is only known at completion).
    if policy.timeout.is_some() {
        for &rt in &rts {
            policy::observe_timeout(policy, rt, sink, enabled);
        }
    }
    if queue.queue_depth() != device_depth {
        queue.set_queue_depth(device_depth)?;
    }
    Ok(RunResult::new(par.name(), rts, 0, last_completion - base))
}

/// The policy-aware twin of [`execute_parallel_serial`].
fn execute_parallel_serial_with_policy(
    dev: &mut dyn BlockDevice,
    par: &ParallelSpec,
    policy: &IoPolicy,
    sink: &uflip_obs::SinkHandle,
) -> Result<RunResult> {
    let enabled = sink.is_enabled();
    let mut rng = policy.jitter_seed;
    let mut streams: Vec<_> = par.process_specs().into_iter().map(|s| s.iter()).collect();
    let base = dev.now();
    let mut ready: Vec<Duration> = vec![base; streams.len()];
    let mut pending: Vec<Option<IoRequest>> = streams.iter_mut().map(|s| s.next()).collect();
    let mut device_free = base;
    let mut rts = Vec::new();
    while let Some(p) = (0..streams.len())
        .filter(|&p| pending[p].is_some())
        .min_by_key(|&p| {
            pending[p]
                .as_ref()
                .map_or(Duration::MAX, |io| ready[p] + io.submit_delay)
        })
    {
        let Some(io) = pending[p].take() else { break };
        let submit = ready[p] + io.submit_delay;
        if submit > device_free {
            dev.idle(submit - device_free);
            device_free = submit;
        }
        let service = policy::issue_with_policy(dev, &io, policy, &mut rng, sink, enabled)?;
        let completion = device_free.max(submit) + service;
        rts.push(completion - submit);
        device_free = completion;
        ready[p] = completion;
        pending[p] = streams[p].next();
    }
    Ok(RunResult::new(par.name(), rts, 0, device_free - base))
}

/// The pre-calendar queued executor: per-iteration linear scan over
/// every process for the earliest submission. Kept as the behavioral
/// reference the calendar loop must match bit-for-bit — the
/// equivalence property tests drive both against cloned devices and
/// assert identical [`RunResult`]s.
pub fn execute_parallel_queued_reference(
    dev: &mut dyn BlockDevice,
    par: &ParallelSpec,
) -> Result<RunResult> {
    let mut streams: Vec<_> = par.process_specs().into_iter().map(|s| s.iter()).collect();
    let n = streams.len();
    let base = dev.now();
    let mut ready: Vec<Duration> = vec![base; n];
    let mut pending: Vec<Option<IoRequest>> = streams.iter_mut().map(|s| s.next()).collect();
    // Processes are synchronous: `blocked[p]` while p's IO is in flight.
    let mut blocked = vec![false; n];
    let queue = dev
        .io_queue()
        .ok_or(DeviceError::Internal("device lost its queue mid-run"))?;
    let device_depth = queue.queue_depth();
    if let Some(depth) = par.queue_depth {
        queue.set_queue_depth(depth)?;
    }
    let mut inflight: TokenSlab<(usize, Duration, usize)> = TokenSlab::new();
    let mut rts: Vec<Duration> = Vec::new();
    let mut seq = 0usize;
    let mut last_completion = base;
    let retire_one = |inflight: &mut TokenSlab<(usize, Duration, usize)>,
                      blocked: &mut [bool],
                      ready: &mut [Duration],
                      rts: &mut [Duration],
                      token: Token,
                      completion: Duration| {
        let (p, submit, sq) = inflight.remove(token);
        rts[sq] = completion - submit;
        blocked[p] = false;
        ready[p] = completion;
    };
    loop {
        // Earliest-submitting runnable process, if any.
        let candidate = (0..n)
            .filter(|&p| !blocked[p] && pending[p].is_some())
            .min_by_key(|&p| {
                pending[p]
                    .as_ref()
                    .map_or(Duration::MAX, |io| ready[p] + io.submit_delay)
            });
        let Some(p) = candidate else {
            match queue.poll() {
                Some((token, completion)) => {
                    retire_one(
                        &mut inflight,
                        &mut blocked,
                        &mut ready,
                        &mut rts,
                        token,
                        completion,
                    );
                    last_completion = last_completion.max(completion);
                    continue;
                }
                None => break,
            }
        };
        let submit = pending[p]
            .as_ref()
            .map_or(Duration::MAX, |io| ready[p] + io.submit_delay);
        if let Some(next_done) = queue.next_completion() {
            if next_done <= submit {
                let (token, completion) = queue
                    .poll()
                    .ok_or(DeviceError::Internal("peeked completion vanished"))?;
                retire_one(
                    &mut inflight,
                    &mut blocked,
                    &mut ready,
                    &mut rts,
                    token,
                    completion,
                );
                last_completion = last_completion.max(completion);
                continue;
            }
        }
        let io = pending[p]
            .take()
            .ok_or(DeviceError::Internal("candidate without an IO"))?;
        match queue.submit(&io, submit) {
            Ok(token) => {
                inflight.insert(token, (p, submit, seq));
                seq += 1;
                rts.push(Duration::ZERO);
                blocked[p] = true;
                pending[p] = streams[p].next();
            }
            Err(DeviceError::QueueFull { .. }) => {
                pending[p] = Some(io);
                let (token, completion) = queue
                    .poll()
                    .ok_or(DeviceError::Internal("full queue with nothing to poll"))?;
                retire_one(
                    &mut inflight,
                    &mut blocked,
                    &mut ready,
                    &mut rts,
                    token,
                    completion,
                );
                last_completion = last_completion.max(completion);
            }
            Err(e) => return Err(e),
        }
    }
    if queue.queue_depth() != device_depth {
        queue.set_queue_depth(device_depth)?;
    }
    Ok(RunResult::new(par.name(), rts, 0, last_completion - base))
}

/// Host-side virtual-time interleaving over a device that serves one
/// IO at a time (the fallback for devices without an [`IoQueue`]; also
/// the reference semantics the queue engine must reproduce at depth 1).
pub fn execute_parallel_serial(dev: &mut dyn BlockDevice, par: &ParallelSpec) -> Result<RunResult> {
    let mut streams: Vec<_> = par.process_specs().into_iter().map(|s| s.iter()).collect();
    // Per-process: (ready virtual time, pending IO).
    let base = dev.now();
    let mut ready: Vec<Duration> = vec![base; streams.len()];
    let mut pending: Vec<Option<IoRequest>> = streams.iter_mut().map(|s| s.next()).collect();
    let mut device_free = base;
    let mut rts = Vec::new();
    // Pick the process whose next IO is submitted earliest (ready time
    // plus its timing-function delay — the same order the queued path
    // uses, so the two paths stay equivalent at depth 1).
    while let Some(p) = (0..streams.len())
        .filter(|&p| pending[p].is_some())
        .min_by_key(|&p| {
            pending[p]
                .as_ref()
                .map_or(Duration::MAX, |io| ready[p] + io.submit_delay)
        })
    {
        let Some(io) = pending[p].take() else { break };
        let submit = ready[p] + io.submit_delay;
        // If the device sat idle between IOs, let background work run.
        if submit > device_free {
            dev.idle(submit - device_free);
            device_free = submit;
        }
        let service = issue(dev, &io)?;
        let completion = device_free.max(submit) + service;
        rts.push(completion - submit);
        device_free = completion;
        ready[p] = completion;
        pending[p] = streams[p].next();
    }
    Ok(RunResult::new(par.name(), rts, 0, device_free - base))
}

/// Execute a parallel pattern with real OS threads, one per process,
/// each driving its own device handle (e.g. separate `O_DIRECT` file
/// descriptors onto the same block device). Used for real-hardware
/// measurements where the OS does the interleaving.
pub fn execute_parallel_threads<F>(make_dev: F, par: &ParallelSpec) -> Result<RunResult>
where
    F: Fn(u32) -> Result<Box<dyn BlockDevice + Send>> + Sync,
{
    let specs = par.process_specs();
    let per_process: Vec<Result<(Vec<Duration>, Duration)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(p, spec)| {
                let make_dev = &make_dev;
                let spec = *spec;
                scope.spawn(move || -> Result<(Vec<Duration>, Duration)> {
                    let mut dev = make_dev(p as u32)?;
                    let start = dev.now();
                    let mut rts = Vec::with_capacity(spec.io_count as usize);
                    for io in spec.iter() {
                        if io.submit_delay > Duration::ZERO {
                            dev.idle(io.submit_delay);
                        }
                        rts.push(issue(dev.as_mut(), &io)?);
                    }
                    let elapsed = dev.now() - start;
                    Ok((rts, elapsed))
                })
            })
            .collect();
        handles
            .into_iter()
            // uflip-lint: allow(UF002, UF031, reason = "join propagates a worker thread's panic; swallowing it would fake results")
            .map(|h| h.join().expect("benchmark threads do not panic"))
            .collect()
    });
    // The processes ran concurrently: the run's elapsed time is the
    // slowest thread's wall-clock, not the sum of every response time.
    // Response times stay grouped per process, in each process's
    // submission order, so per-process analyses remain possible.
    let mut all = Vec::new();
    let mut elapsed = Duration::ZERO;
    for run in per_process {
        let (rts, thread_elapsed) = run?;
        all.extend(rts);
        elapsed = elapsed.max(thread_elapsed);
    }
    Ok(RunResult::new(par.name(), all, 0, elapsed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uflip_device::MemDevice;
    use uflip_patterns::{LbaFn, TimingFn};

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;

    fn dev() -> MemDevice {
        MemDevice::new(64 * MB, Duration::from_micros(100), 0)
    }

    #[test]
    fn basic_run_records_every_io() {
        let mut d = dev();
        let spec = PatternSpec::baseline_sr(32 * KB, MB, 50);
        let run = execute_run(&mut d, &spec).unwrap();
        assert_eq!(run.len(), 50);
        assert_eq!(d.reads(), 50);
        assert!(run.rts.iter().all(|&rt| rt == Duration::from_micros(100)));
    }

    #[test]
    fn pause_pattern_extends_elapsed_but_not_response_times() {
        let mut d = dev();
        let spec = PatternSpec::baseline_sw(32 * KB, MB, 10)
            .with_timing(TimingFn::Pause(Duration::from_millis(1)));
        let run = execute_run(&mut d, &spec).unwrap();
        assert!(run.rts.iter().all(|&rt| rt == Duration::from_micros(100)));
        // 10 IOs of 100 µs + 9 pauses of 1 ms.
        assert_eq!(run.elapsed, Duration::from_micros(10 * 100 + 9000));
    }

    #[test]
    fn mixed_run_tags_sub_patterns() {
        let mut d = dev();
        let a = PatternSpec::baseline_sr(32 * KB, MB, 1);
        let b = PatternSpec::baseline_rw(32 * KB, MB, 1).with_target(2 * MB, MB);
        let mix = MixSpec::new(a, b, 3, 12);
        let (run, procs) = execute_mixed(&mut d, &mix).unwrap();
        assert_eq!(run.len(), 12);
        assert_eq!(
            procs.iter().filter(|&&p| p == 1).count(),
            3,
            "one write per 3 reads"
        );
        assert_eq!(d.writes(), 3);
        assert_eq!(d.reads(), 9);
    }

    #[test]
    fn parallel_on_serial_device_adds_queueing_delay() {
        let mut d = dev();
        let base = PatternSpec::baseline(LbaFn::Sequential, Mode::Write, 32 * KB, 4 * MB, 16);
        let par = ParallelSpec::new(base, 4);
        let run = execute_parallel(&mut d, &par).unwrap();
        assert_eq!(run.len(), 16);
        // With 4 processes contending for a serial device, most IOs wait
        // for up to 3 others: mean response ≥ service time.
        let mean = run.summary_all().unwrap().mean;
        assert!(
            mean >= Duration::from_micros(100),
            "queueing cannot make IOs faster: {mean:?}"
        );
        let max = run.summary_all().unwrap().max;
        assert!(
            max >= Duration::from_micros(300),
            "some IO must queue behind ~3 others: {max:?}"
        );
    }

    #[test]
    fn parallel_degree_one_matches_basic_run() {
        let mut d1 = dev();
        let mut d2 = dev();
        let base = PatternSpec::baseline(LbaFn::Sequential, Mode::Write, 32 * KB, 4 * MB, 8);
        let par = ParallelSpec::new(base, 1);
        let run_par = execute_parallel(&mut d1, &par).unwrap();
        let run_basic = execute_run(&mut d2, &par.process_specs()[0]).unwrap();
        assert_eq!(run_par.len(), run_basic.len());
        assert_eq!(
            run_par.summary_all().unwrap().mean,
            run_basic.summary_all().unwrap().mean
        );
    }

    #[test]
    fn parallel_total_work_is_conserved() {
        let mut d = dev();
        let base = PatternSpec::baseline(LbaFn::Sequential, Mode::Write, 32 * KB, 4 * MB, 32);
        let par = ParallelSpec::new(base, 4);
        execute_parallel(&mut d, &par).unwrap();
        assert_eq!(d.writes(), 32, "every process IO reaches the device");
    }

    #[test]
    fn threaded_parallel_collects_all_ios() {
        let base = PatternSpec::baseline(LbaFn::Sequential, Mode::Write, 32 * KB, 4 * MB, 16);
        let par = ParallelSpec::new(base, 4);
        let run = execute_parallel_threads(
            |_p| {
                Ok(
                    Box::new(MemDevice::new(64 * MB, Duration::from_micros(10), 0))
                        as Box<dyn BlockDevice + Send>,
                )
            },
            &par,
        )
        .unwrap();
        assert_eq!(run.len(), 16);
    }
}
