//! Pattern executors: drive a device with a pattern, capture every IO's
//! response time.
//!
//! Three executors cover the paper's three pattern classes:
//!
//! * [`execute_run`] — basic patterns (one process, synchronous IOs;
//!   the timing function's delays become device idle time);
//! * [`execute_mixed`] — mixed patterns (the interleaved sequence is
//!   itself a single synchronous stream, §3.1);
//! * [`execute_parallel`] — parallel patterns: `ParallelDegree`
//!   processes each issue their next IO as soon as their previous one
//!   completes, while the device serves one IO at a time. On the
//!   simulator this is an exact virtual-time interleaving; response
//!   times include queueing delay, which is how "parallel execution
//!   with a high degree can cause multiple sequential write patterns to
//!   degenerate" (§5.2) and why Hint 7 finds no benefit in concurrency.
//!
//! For real devices ([`uflip_device::DirectIoFile`]), parallel patterns
//! should instead be run with OS threads; [`execute_parallel_threads`]
//! provides that using scoped threads over per-process device handles.

use crate::run::RunResult;
use crate::Result;
use std::time::Duration;
use uflip_device::BlockDevice;
use uflip_patterns::{IoRequest, MixSpec, Mode, ParallelSpec, PatternSpec};

fn issue(dev: &mut dyn BlockDevice, io: &IoRequest) -> Result<Duration> {
    match io.mode {
        Mode::Read => dev.read(io.offset, io.size),
        Mode::Write => dev.write(io.offset, io.size),
    }
}

/// Execute a basic pattern synchronously. Returns the per-IO trace.
pub fn execute_run(dev: &mut dyn BlockDevice, spec: &PatternSpec) -> Result<RunResult> {
    debug_assert!(spec.validate().is_ok(), "invalid spec: {:?}", spec.validate());
    let start = dev.now();
    let mut rts = Vec::with_capacity(spec.io_count as usize);
    for io in spec.iter() {
        if io.submit_delay > Duration::ZERO {
            dev.idle(io.submit_delay);
        }
        rts.push(issue(dev, &io)?);
    }
    Ok(RunResult::new(spec.code(), rts, spec.io_ignore, dev.now() - start))
}

/// Execute a mixed pattern synchronously. The per-IO trace is returned
/// together with which sub-pattern each IO belonged to, so analyses can
/// separate the majority and minority costs.
pub fn execute_mixed(dev: &mut dyn BlockDevice, mix: &MixSpec) -> Result<(RunResult, Vec<u16>)> {
    let start = dev.now();
    let mut rts = Vec::with_capacity(mix.io_count as usize);
    let mut procs = Vec::with_capacity(mix.io_count as usize);
    for io in mix.iter() {
        if io.submit_delay > Duration::ZERO {
            dev.idle(io.submit_delay);
        }
        rts.push(issue(dev, &io)?);
        procs.push(io.process);
    }
    Ok((RunResult::new(mix.name(), rts, 0, dev.now() - start), procs))
}

/// Execute a parallel pattern on a simulated device using virtual-time
/// interleaving.
///
/// Each process is a synchronous loop: it submits its next IO the
/// moment its previous IO completes. The device serves IOs one at a
/// time in submission order. The recorded response time of an IO is
/// *completion − submission*, i.e. it includes time spent queued behind
/// other processes' IOs — exactly what a host thread would measure.
pub fn execute_parallel(dev: &mut dyn BlockDevice, par: &ParallelSpec) -> Result<RunResult> {
    let mut streams: Vec<_> = par.process_specs().into_iter().map(|s| s.iter()).collect();
    // Per-process: (ready virtual time, pending IO).
    let mut ready: Vec<Duration> = vec![dev.now(); streams.len()];
    let mut pending: Vec<Option<IoRequest>> = streams.iter_mut().map(|s| s.next()).collect();
    let mut device_free = dev.now();
    let mut rts = Vec::new();
    loop {
        // Pick the process whose next IO is submitted earliest.
        let Some(p) = (0..streams.len())
            .filter(|&p| pending[p].is_some())
            .min_by_key(|&p| ready[p])
        else {
            break;
        };
        let io = pending[p].take().expect("selected process has an IO");
        let submit = ready[p] + io.submit_delay;
        // If the device sat idle between IOs, let background work run.
        if submit > device_free {
            dev.idle(submit - device_free);
            device_free = submit;
        }
        let service = issue(dev, &io)?;
        let completion = device_free.max(submit) + service;
        rts.push(completion - submit);
        device_free = completion;
        ready[p] = completion;
        pending[p] = streams[p].next();
    }
    let elapsed = device_free;
    Ok(RunResult::new(par.name(), rts, 0, elapsed))
}

/// Execute a parallel pattern with real OS threads, one per process,
/// each driving its own device handle (e.g. separate `O_DIRECT` file
/// descriptors onto the same block device). Used for real-hardware
/// measurements where the OS does the interleaving.
pub fn execute_parallel_threads<F>(
    make_dev: F,
    par: &ParallelSpec,
) -> Result<RunResult>
where
    F: Fn(u32) -> Result<Box<dyn BlockDevice + Send>> + Sync,
{
    let specs = par.process_specs();
    let results = parking_lot::Mutex::new(Vec::<Vec<Duration>>::new());
    let first_err = parking_lot::Mutex::new(None);
    crossbeam::thread::scope(|scope| {
        for (p, spec) in specs.iter().enumerate() {
            let results = &results;
            let first_err = &first_err;
            let make_dev = &make_dev;
            let spec = *spec;
            scope.spawn(move |_| {
                let run = (|| -> Result<Vec<Duration>> {
                    let mut dev = make_dev(p as u32)?;
                    let mut rts = Vec::with_capacity(spec.io_count as usize);
                    for io in spec.iter() {
                        if io.submit_delay > Duration::ZERO {
                            dev.idle(io.submit_delay);
                        }
                        rts.push(issue(dev.as_mut(), &io)?);
                    }
                    Ok(rts)
                })();
                match run {
                    Ok(rts) => results.lock().push(rts),
                    Err(e) => {
                        let mut slot = first_err.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                    }
                }
            });
        }
    })
    .expect("scoped threads do not panic");
    if let Some(e) = first_err.into_inner() {
        return Err(e);
    }
    let mut all: Vec<Duration> = results.into_inner().into_iter().flatten().collect();
    all.sort_unstable();
    let elapsed = all.iter().sum();
    Ok(RunResult::new(par.name(), all, 0, elapsed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uflip_device::MemDevice;
    use uflip_patterns::{LbaFn, TimingFn};

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;

    fn dev() -> MemDevice {
        MemDevice::new(64 * MB, Duration::from_micros(100), 0)
    }

    #[test]
    fn basic_run_records_every_io() {
        let mut d = dev();
        let spec = PatternSpec::baseline_sr(32 * KB, MB, 50);
        let run = execute_run(&mut d, &spec).unwrap();
        assert_eq!(run.len(), 50);
        assert_eq!(d.reads(), 50);
        assert!(run.rts.iter().all(|&rt| rt == Duration::from_micros(100)));
    }

    #[test]
    fn pause_pattern_extends_elapsed_but_not_response_times() {
        let mut d = dev();
        let spec = PatternSpec::baseline_sw(32 * KB, MB, 10)
            .with_timing(TimingFn::Pause(Duration::from_millis(1)));
        let run = execute_run(&mut d, &spec).unwrap();
        assert!(run.rts.iter().all(|&rt| rt == Duration::from_micros(100)));
        // 10 IOs of 100 µs + 9 pauses of 1 ms.
        assert_eq!(run.elapsed, Duration::from_micros(10 * 100 + 9000));
    }

    #[test]
    fn mixed_run_tags_sub_patterns() {
        let mut d = dev();
        let a = PatternSpec::baseline_sr(32 * KB, MB, 1);
        let b = PatternSpec::baseline_rw(32 * KB, MB, 1).with_target(2 * MB, MB);
        let mix = MixSpec::new(a, b, 3, 12);
        let (run, procs) = execute_mixed(&mut d, &mix).unwrap();
        assert_eq!(run.len(), 12);
        assert_eq!(procs.iter().filter(|&&p| p == 1).count(), 3, "one write per 3 reads");
        assert_eq!(d.writes(), 3);
        assert_eq!(d.reads(), 9);
    }

    #[test]
    fn parallel_on_serial_device_adds_queueing_delay() {
        let mut d = dev();
        let base = PatternSpec::baseline(LbaFn::Sequential, Mode::Write, 32 * KB, 4 * MB, 16);
        let par = ParallelSpec::new(base, 4);
        let run = execute_parallel(&mut d, &par).unwrap();
        assert_eq!(run.len(), 16);
        // With 4 processes contending for a serial device, most IOs wait
        // for up to 3 others: mean response ≥ service time.
        let mean = run.summary_all().unwrap().mean;
        assert!(
            mean >= Duration::from_micros(100),
            "queueing cannot make IOs faster: {mean:?}"
        );
        let max = run.summary_all().unwrap().max;
        assert!(
            max >= Duration::from_micros(300),
            "some IO must queue behind ~3 others: {max:?}"
        );
    }

    #[test]
    fn parallel_degree_one_matches_basic_run() {
        let mut d1 = dev();
        let mut d2 = dev();
        let base = PatternSpec::baseline(LbaFn::Sequential, Mode::Write, 32 * KB, 4 * MB, 8);
        let par = ParallelSpec::new(base, 1);
        let run_par = execute_parallel(&mut d1, &par).unwrap();
        let run_basic =
            execute_run(&mut d2, &par.process_specs()[0]).unwrap();
        assert_eq!(run_par.len(), run_basic.len());
        assert_eq!(
            run_par.summary_all().unwrap().mean,
            run_basic.summary_all().unwrap().mean
        );
    }

    #[test]
    fn parallel_total_work_is_conserved() {
        let mut d = dev();
        let base = PatternSpec::baseline(LbaFn::Sequential, Mode::Write, 32 * KB, 4 * MB, 32);
        let par = ParallelSpec::new(base, 4);
        execute_parallel(&mut d, &par).unwrap();
        assert_eq!(d.writes(), 32, "every process IO reaches the device");
    }

    #[test]
    fn threaded_parallel_collects_all_ios() {
        let base = PatternSpec::baseline(LbaFn::Sequential, Mode::Write, 32 * KB, 4 * MB, 16);
        let par = ParallelSpec::new(base, 4);
        let run = execute_parallel_threads(
            |_p| {
                Ok(Box::new(MemDevice::new(64 * MB, Duration::from_micros(10), 0))
                    as Box<dyn BlockDevice + Send>)
            },
            &par,
        )
        .unwrap();
        assert_eq!(run.len(), 16);
    }
}
