//! Micro-benchmark 6 — Parallelism (`ParallelDegree`).
//!
//! "Since flash devices include many flash chips (even USB flash drives
//! typically contain two flash chips), we want to study how they
//! support overlapping IOs. We divide the target space into
//! ParallelDegree subsets, each one accessed by a process executing the
//! same baseline pattern." (§3.2; Table 1: `[2⁰ … 2⁴]`.)
//!
//! §5.2's finding (Hint 7): no performance improvement from parallel
//! submission; high degrees make multiple sequential-write patterns
//! degenerate to partitioned-write patterns.
//!
//! Beyond the paper, [`queue_depth_experiments`] sweeps the *device
//! command-queue depth* (NCQ) at a fixed high degree: the 2008 devices
//! uFLIP measured served one command at a time (which is why Hint 7
//! found no benefit), but the simulator's submission engine can
//! overlap in-flight IOs across flash channels, so the sweep shows the
//! throughput those same channel layouts would deliver with a deeper
//! queue — emergent, not scripted (see `uflip_core::executor`).

use crate::experiment::{Experiment, ExperimentPoint, Workload};
use crate::micro::MicroConfig;
use uflip_patterns::{LbaFn, Mode, ParallelSpec};

/// Degrees swept: 1, 2, 4, 8, 16.
pub fn degrees() -> Vec<u32> {
    (0..=4u32).map(|e| 1 << e).collect()
}

/// Queue depths swept by [`queue_depth_experiments`]: 1, 2, 4, 8, 16, 32.
pub fn queue_depths() -> Vec<u32> {
    (0..=5u32).map(|e| 1 << e).collect()
}

/// Build the four Parallelism experiments (one per baseline pattern).
pub fn experiments(cfg: &MicroConfig) -> Vec<Experiment> {
    let baselines = [
        (LbaFn::Sequential, Mode::Read, "SR"),
        (LbaFn::Random, Mode::Read, "RR"),
        (LbaFn::Sequential, Mode::Write, "SW"),
        (LbaFn::Random, Mode::Write, "RW"),
    ];
    baselines
        .into_iter()
        .map(|(lba, mode, code)| Experiment {
            name: format!("parallelism/{code}"),
            varying: "ParallelDegree",
            points: degrees()
                .into_iter()
                .map(|d| ExperimentPoint {
                    param: f64::from(d),
                    param_label: format!("degree {d}"),
                    workload: Workload::Parallel(ParallelSpec::new(cfg.baseline(lba, mode), d)),
                })
                .collect(),
        })
        .collect()
}

/// Build the four queue-depth sweep experiments (one per baseline
/// pattern): `ParallelDegree` fixed at 16 — the deepest Table 1 value,
/// so host-side concurrency never caps the device — while the device
/// queue depth sweeps [`queue_depths`].
pub fn queue_depth_experiments(cfg: &MicroConfig) -> Vec<Experiment> {
    const DEGREE: u32 = 16;
    let baselines = [
        (LbaFn::Sequential, Mode::Read, "SR"),
        (LbaFn::Random, Mode::Read, "RR"),
        (LbaFn::Sequential, Mode::Write, "SW"),
        (LbaFn::Random, Mode::Write, "RW"),
    ];
    baselines
        .into_iter()
        .map(|(lba, mode, code)| Experiment {
            name: format!("parallelism/qd/{code}"),
            varying: "QueueDepth",
            points: queue_depths()
                .into_iter()
                .map(|d| ExperimentPoint {
                    param: f64::from(d),
                    param_label: format!("qd {d}"),
                    workload: Workload::Parallel(
                        ParallelSpec::new(cfg.baseline(lba, mode), DEGREE).with_queue_depth(d),
                    ),
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_match_table1() {
        assert_eq!(degrees(), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn queue_depth_sweep_is_valid_and_fixed_degree() {
        let exps = queue_depth_experiments(&MicroConfig::quick());
        assert_eq!(exps.len(), 4);
        for e in &exps {
            assert_eq!(e.varying, "QueueDepth");
            assert_eq!(e.points.len(), queue_depths().len());
            for (p, depth) in e.points.iter().zip(queue_depths()) {
                match &p.workload {
                    Workload::Parallel(ps) => {
                        ps.validate().expect("queue-depth point must validate");
                        assert_eq!(ps.degree, 16, "degree is fixed so depth is the variable");
                        assert_eq!(ps.queue_depth, Some(depth));
                    }
                    _ => panic!("queue-depth sweep must produce parallel workloads"),
                }
            }
        }
    }

    #[test]
    fn four_experiments_with_valid_parallel_specs() {
        let exps = experiments(&MicroConfig::quick());
        assert_eq!(exps.len(), 4);
        for e in &exps {
            for p in &e.points {
                match &p.workload {
                    Workload::Parallel(ps) => ps.validate().expect("parallel point must validate"),
                    _ => panic!("parallelism must produce parallel workloads"),
                }
            }
        }
    }

    #[test]
    fn slices_shrink_with_degree() {
        let exps = experiments(&MicroConfig::quick());
        let points = &exps[2].points; // SW
        let slice_of = |w: &Workload| match w {
            Workload::Parallel(p) => p.process_specs()[0].target_size,
            _ => unreachable!(),
        };
        assert!(slice_of(&points[0].workload) > slice_of(&points[4].workload));
    }
}
