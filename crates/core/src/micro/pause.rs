//! Micro-benchmark 8 — Pause (`Pause`).
//!
//! "This is a variation of the baseline patterns, where IOs are not
//! contiguous in time. We use the pause function and vary the Pause
//! parameter to observe whether potential asynchronous operations from
//! the flash device block manager impact performance." (§3.2;
//! Table 1: `[2⁰ … 2⁸] × 0.1 ms`.)
//!
//! Table 3 column 5: on the high-end SSDs a pause equal to the average
//! random-write time makes random writes behave like sequential ones —
//! but total workload time is unchanged (Hint 7).

use crate::experiment::{Experiment, ExperimentPoint, Workload};
use crate::micro::MicroConfig;
use std::time::Duration;
use uflip_patterns::{LbaFn, Mode, TimingFn};

/// Pause values: `2⁰ … 2⁸ × 0.1 ms` (0.1 ms – 25.6 ms).
pub fn pauses() -> Vec<Duration> {
    (0..=8u32)
        .map(|e| Duration::from_micros(100) * (1 << e))
        .collect()
}

/// Build the four Pause experiments.
pub fn experiments(cfg: &MicroConfig) -> Vec<Experiment> {
    let baselines = [
        (LbaFn::Sequential, Mode::Read, "SR"),
        (LbaFn::Random, Mode::Read, "RR"),
        (LbaFn::Sequential, Mode::Write, "SW"),
        (LbaFn::Random, Mode::Write, "RW"),
    ];
    baselines
        .into_iter()
        .map(|(lba, mode, code)| Experiment {
            name: format!("pause/{code}"),
            varying: "Pause",
            points: pauses()
                .into_iter()
                .map(|p| ExperimentPoint {
                    param: p.as_secs_f64() * 1e3,
                    param_label: format!("{:.1} ms", p.as_secs_f64() * 1e3),
                    workload: Workload::Basic(
                        cfg.baseline(lba, mode).with_timing(TimingFn::Pause(p)),
                    ),
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pause_range_matches_table1() {
        let p = pauses();
        assert_eq!(p[0], Duration::from_micros(100));
        assert_eq!(*p.last().unwrap(), Duration::from_micros(25_600));
        assert_eq!(p.len(), 9);
    }

    #[test]
    fn four_experiments_with_pause_timing() {
        let exps = experiments(&MicroConfig::quick());
        assert_eq!(exps.len(), 4);
        for e in &exps {
            for p in &e.points {
                match &p.workload {
                    Workload::Basic(s) => {
                        assert!(matches!(s.timing, TimingFn::Pause(_)));
                        s.validate().expect("pause point must validate");
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
}
