//! Micro-benchmark 1 — Granularity (`IOSize`).
//!
//! "The flash translation layer manages a direct map between blocks and
//! flash pages, but the granularity at which this mapping takes place
//! is not documented. The IOSize parameter allows determining whether a
//! flash device favors a given granularity of IOs." (§3.2)
//!
//! Table 1 range: `[2⁰ … 2⁹] × 512 B` (0.5 KB – 256 KB) "plus some
//! non-powers of 2"; Figures 6/7 plot response time up to 512 KB, so we
//! extend the sweep one octave and add three non-power-of-two sizes.

use crate::experiment::{Experiment, ExperimentPoint, Workload};
use crate::micro::MicroConfig;
use uflip_patterns::{LbaFn, Mode};

/// IOSize values swept: powers of two 0.5 KB … 512 KB plus non-powers
/// (1.5 KB, 24 KB, 160 KB) per Table 1's "plus some non-powers of 2".
pub fn io_sizes() -> Vec<u64> {
    let mut v: Vec<u64> = (0..=10).map(|e| 512u64 << e).collect();
    v.extend([3 * 512, 48 * 512, 320 * 512]);
    v.sort_unstable();
    v
}

/// Build the four Granularity experiments (one per baseline pattern).
pub fn experiments(cfg: &MicroConfig) -> Vec<Experiment> {
    let baselines = [
        (LbaFn::Sequential, Mode::Read, "SR"),
        (LbaFn::Random, Mode::Read, "RR"),
        (LbaFn::Sequential, Mode::Write, "SW"),
        (LbaFn::Random, Mode::Write, "RW"),
    ];
    baselines
        .into_iter()
        .map(|(lba, mode, code)| Experiment {
            name: format!("granularity/{code}"),
            varying: "IOSize",
            points: io_sizes()
                .into_iter()
                .map(|sz| ExperimentPoint {
                    param: sz as f64,
                    param_label: format!("{} KB", sz as f64 / 1024.0),
                    workload: Workload::Basic(cfg.baseline(lba, mode).with_io_size(sz)),
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_experiments_one_per_baseline() {
        let exps = experiments(&MicroConfig::quick());
        assert_eq!(exps.len(), 4);
        let names: Vec<&str> = exps.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "granularity/SR",
                "granularity/RR",
                "granularity/SW",
                "granularity/RW"
            ]
        );
    }

    #[test]
    fn sweep_covers_paper_range_with_non_powers() {
        let sizes = io_sizes();
        assert!(sizes.contains(&512), "2^0 x 512 B");
        assert!(sizes.contains(&(256 * 1024)), "2^9 x 512 B");
        assert!(sizes.contains(&(512 * 1024)), "Figure 6/7 extend to 512 KB");
        assert!(sizes.contains(&(3 * 512)), "non-power of two present");
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted, "sweep is ordered");
    }

    #[test]
    fn every_point_validates() {
        for e in experiments(&MicroConfig::quick()) {
            for p in &e.points {
                if let Workload::Basic(s) = &p.workload {
                    s.validate().expect("granularity point must validate");
                }
            }
        }
    }

    #[test]
    fn only_io_size_varies() {
        let exps = experiments(&MicroConfig::quick());
        let e = &exps[2]; // SW
        let first = match &e.points[0].workload {
            Workload::Basic(s) => *s,
            _ => unreachable!(),
        };
        for p in &e.points {
            let s = match &p.workload {
                Workload::Basic(s) => *s,
                _ => unreachable!(),
            };
            assert_eq!(s.target_size, first.target_size);
            assert_eq!(s.mode, first.mode);
            assert_eq!(s.io_shift, 0);
        }
    }
}
