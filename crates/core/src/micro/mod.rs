//! The nine uFLIP micro-benchmarks (paper §3.2, Table 1).
//!
//! Each micro-benchmark is "a collection of related experiments over
//! the baseline patterns" with a single varying parameter:
//!
//! | # | module          | varying parameter  |
//! |---|-----------------|--------------------|
//! | 1 | [`granularity`]  | `IOSize`           |
//! | 2 | [`alignment`]    | `IOShift`          |
//! | 3 | [`locality`]     | `TargetSize`       |
//! | 4 | [`partitioning`] | `Partitions`       |
//! | 5 | [`order`]        | `Incr`             |
//! | 6 | [`parallelism`]  | `ParallelDegree`   |
//! | 7 | [`mix`]          | `Ratio`            |
//! | 8 | [`pause`]        | `Pause`            |
//! | 9 | [`bursts`]       | `Burst`            |
//!
//! All nine honour design principle 3: they are "based on the four
//! baseline patterns, departing from the baseline patterns only to
//! accommodate the particular parameter being varied".

pub mod alignment;
pub mod bursts;
pub mod granularity;
pub mod locality;
pub mod mix;
pub mod order;
pub mod parallelism;
pub mod partitioning;
pub mod pause;

use uflip_patterns::{LbaFn, Mode, PatternSpec};

/// Shared configuration for generating micro-benchmark experiments.
#[derive(Debug, Clone, Copy)]
pub struct MicroConfig {
    /// Fixed IO size for the non-Granularity micro-benchmarks
    /// (32 KB in the paper's experiments).
    pub io_size: u64,
    /// Default target-window size for baseline patterns.
    pub target_size: u64,
    /// `IOCount` for read patterns and sequential writes (the paper
    /// used 1024 for SSDs, 512 for slow devices).
    pub io_count: u64,
    /// `IOCount` for random-write patterns (5120 for SSDs — their
    /// oscillations are larger, §5.1).
    pub io_count_rw: u64,
    /// `IOIgnore` for non-random-write patterns.
    pub io_ignore: u64,
    /// `IOIgnore` for patterns involving random writes (the Memoright /
    /// Mtron start-up phase, §5.1: 30 and 128).
    pub io_ignore_rw: u64,
    /// Random seed base.
    pub seed: u64,
}

impl MicroConfig {
    /// The paper's SSD settings.
    pub fn paper_ssd() -> Self {
        MicroConfig {
            io_size: 32 * 1024,
            target_size: 128 * 1024 * 1024,
            io_count: 1024,
            io_count_rw: 5120,
            io_ignore: 0,
            io_ignore_rw: 128,
            seed: 0xF11B,
        }
    }

    /// The paper's settings for slow/small devices (USB, IDE, SD).
    pub fn paper_low_end() -> Self {
        MicroConfig {
            io_size: 32 * 1024,
            target_size: 64 * 1024 * 1024,
            io_count: 512,
            io_count_rw: 512,
            io_ignore: 0,
            io_ignore_rw: 0,
            seed: 0xF11B,
        }
    }

    /// Reduced settings for unit tests and quick sweeps.
    pub fn quick() -> Self {
        MicroConfig {
            io_size: 32 * 1024,
            target_size: 8 * 1024 * 1024,
            io_count: 64,
            io_count_rw: 128,
            io_ignore: 0,
            io_ignore_rw: 0,
            seed: 0xF11B,
        }
    }

    /// The four baseline patterns under this configuration.
    pub fn baselines(&self) -> [PatternSpec; 4] {
        [
            self.baseline(LbaFn::Sequential, Mode::Read),
            self.baseline(LbaFn::Random, Mode::Read),
            self.baseline(LbaFn::Sequential, Mode::Write),
            self.baseline(LbaFn::Random, Mode::Write),
        ]
    }

    /// One baseline pattern with methodology-derived counts applied.
    pub fn baseline(&self, lba: LbaFn, mode: Mode) -> PatternSpec {
        let is_rw = matches!(lba, LbaFn::Random) && mode == Mode::Write;
        let (count, ignore) = if is_rw {
            (self.io_count_rw, self.io_ignore_rw)
        } else {
            (self.io_count, self.io_ignore)
        };
        PatternSpec::baseline(lba, mode, self.io_size, self.target_size, count)
            .with_counts(count, ignore.min(count.saturating_sub(1)))
            .with_seed(self.seed)
    }
}

/// Standard power-of-two sweep `base × 2^0 … base × 2^max_exp`, capped
/// at `cap` (a device capacity / target budget).
///
/// The old `base << e` wrapped silently for large exponents (release)
/// or panicked (debug); doubling with `checked_mul` stops the sweep at
/// the last representable value instead, and the cap keeps sweep points
/// inside the device they will run on.
pub(crate) fn pow2_sweep(base: u64, max_exp: u32, cap: u64) -> Vec<u64> {
    let mut v = Vec::with_capacity(max_exp as usize + 1);
    let mut cur = base;
    for _ in 0..=max_exp {
        if cur == 0 || cur > cap {
            break;
        }
        v.push(cur);
        match cur.checked_mul(2) {
            Some(next) => cur = next,
            None => break,
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_are_the_papers_four() {
        let cfg = MicroConfig::quick();
        let codes: Vec<String> = cfg.baselines().iter().map(|b| b.code()).collect();
        assert_eq!(codes, vec!["SR", "RR", "SW", "RW"]);
    }

    #[test]
    fn random_writes_get_longer_runs_and_ignore() {
        let cfg = MicroConfig::paper_ssd();
        let b = cfg.baselines();
        assert_eq!(b[0].io_count, 1024);
        assert_eq!(b[3].io_count, 5120);
        assert_eq!(b[3].io_ignore, 128);
        assert_eq!(b[0].io_ignore, 0);
    }

    #[test]
    fn sweep_generation() {
        assert_eq!(pow2_sweep(512, 3, u64::MAX), vec![512, 1024, 2048, 4096]);
    }

    #[test]
    fn sweep_caps_at_the_budget() {
        assert_eq!(pow2_sweep(512, 10, 2048), vec![512, 1024, 2048]);
        assert!(pow2_sweep(4096, 10, 512).is_empty());
    }

    #[test]
    fn sweep_survives_overflowing_exponents() {
        // Regression: `base << e` wrapped for e near 64, yielding a
        // sweep full of zeros/garbage. The doubling loop stops at the
        // last representable point instead.
        let v = pow2_sweep(1 << 40, 63, u64::MAX);
        assert_eq!(v.len(), 24, "2^40 .. 2^63 fit in a u64");
        assert_eq!(*v.last().unwrap(), 1 << 63);
        assert!(v.windows(2).all(|w| w[1] == 2 * w[0]));
        assert_eq!(pow2_sweep(0, 8, u64::MAX), Vec::<u64>::new());
    }

    #[test]
    fn all_baseline_specs_validate() {
        for cfg in [
            MicroConfig::paper_ssd(),
            MicroConfig::paper_low_end(),
            MicroConfig::quick(),
        ] {
            for b in cfg.baselines() {
                b.validate().expect("baseline must validate");
            }
        }
    }
}
