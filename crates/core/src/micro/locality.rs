//! Micro-benchmark 3 — Locality (`TargetSize`).
//!
//! "We study the impact of locality of the baseline patterns, by
//! varying TargetSize down to IOSize." (§3.2.) Table 1 sweeps random
//! patterns over `[2⁰ … 2¹⁶] × IOSize` and sequential ones over
//! `[2⁰ … 2⁸] × IOSize`; the sequential variant wraps inside the window
//! (`(i × IOSize) mod TargetSize`).
//!
//! This is the micro-benchmark behind Figure 8 and Hint 4 ("Random
//! writes should be limited to a focused area": 4–16 MB areas make
//! random writes nearly as cheap as sequential ones).

use crate::experiment::{Experiment, ExperimentPoint, Workload};
use crate::micro::{pow2_sweep, MicroConfig};
use uflip_patterns::{LbaFn, Mode};

/// Random-pattern target sizes: `[2⁰ … 2^max_exp] × io_size`, capped to
/// the device budget (`cap`).
pub fn random_target_sizes(io_size: u64, max_exp: u32, cap: u64) -> Vec<u64> {
    pow2_sweep(io_size, max_exp, cap)
}

/// Build the Locality experiments: RR/RW sweep wide, SR/SW sweep narrow.
pub fn experiments(cfg: &MicroConfig) -> Vec<Experiment> {
    let rand_sizes = random_target_sizes(cfg.io_size, 16, cfg.target_size);
    let seq_sizes = random_target_sizes(cfg.io_size, 8, cfg.target_size);
    let mut out = Vec::new();
    for (lba, mode, code, sizes) in [
        (LbaFn::Random, Mode::Read, "RR", &rand_sizes),
        (LbaFn::Random, Mode::Write, "RW", &rand_sizes),
        (LbaFn::Sequential, Mode::Read, "SR", &seq_sizes),
        (LbaFn::Sequential, Mode::Write, "SW", &seq_sizes),
    ] {
        out.push(Experiment {
            name: format!("locality/{code}"),
            varying: "TargetSize",
            points: sizes
                .iter()
                .map(|&t| ExperimentPoint {
                    param: t as f64,
                    param_label: format!("{:.2} MB", t as f64 / (1024.0 * 1024.0)),
                    workload: Workload::Basic(cfg.baseline(lba, mode).with_target(0, t)),
                })
                .collect(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_go_down_to_io_size() {
        let cfg = MicroConfig::quick();
        let exps = experiments(&cfg);
        for e in &exps {
            assert_eq!(
                e.points[0].param, cfg.io_size as f64,
                "{}: smallest = IOSize",
                e.name
            );
        }
    }

    #[test]
    fn sweep_capped_by_budget() {
        let sizes = random_target_sizes(32 * 1024, 16, 8 * 1024 * 1024);
        assert_eq!(*sizes.last().unwrap(), 8 * 1024 * 1024);
        assert!(sizes.len() > 4);
    }

    #[test]
    fn random_sweeps_wider_than_sequential() {
        let mut cfg = MicroConfig::quick();
        cfg.target_size = 1 << 31; // uncapped
        let exps = experiments(&cfg);
        let rr = &exps[0];
        let sr = &exps[2];
        assert!(rr.points.len() > sr.points.len());
        assert_eq!(rr.points.len(), 17, "2^0..2^16");
        assert_eq!(sr.points.len(), 9, "2^0..2^8");
    }

    #[test]
    fn all_points_validate() {
        for e in experiments(&MicroConfig::quick()) {
            for p in &e.points {
                if let Workload::Basic(s) = &p.workload {
                    s.validate().expect("locality point must validate");
                }
            }
        }
    }
}
