//! Micro-benchmark 2 — Alignment (`IOShift`).
//!
//! "Using a fixed IOSize (e.g., chosen based on the first
//! micro-benchmark), we study the impact of alignment on the baseline
//! patterns by introducing the IOShift parameter and varying it from 0
//! to IOSize." (§3.2; Table 1: `[2⁰ … IOSize/512] × 512 B`.)
//!
//! §5.2 reports the penalty is severe: on the Samsung SSD random 32 KB
//! IOs go from 18 ms aligned to 32 ms when not 16 KB-aligned (Hint 3:
//! "Blocks should be aligned to flash pages").

use crate::experiment::{Experiment, ExperimentPoint, Workload};
use crate::micro::MicroConfig;
use uflip_patterns::{LbaFn, Mode};

/// Shift values: 0 plus powers of two × 512 B strictly below `io_size`.
pub fn shifts(io_size: u64) -> Vec<u64> {
    let mut v = vec![0u64];
    let mut s = 512;
    while s < io_size {
        v.push(s);
        s <<= 1;
    }
    v
}

/// Build the four Alignment experiments.
pub fn experiments(cfg: &MicroConfig) -> Vec<Experiment> {
    let baselines = [
        (LbaFn::Sequential, Mode::Read, "SR"),
        (LbaFn::Random, Mode::Read, "RR"),
        (LbaFn::Sequential, Mode::Write, "SW"),
        (LbaFn::Random, Mode::Write, "RW"),
    ];
    baselines
        .into_iter()
        .map(|(lba, mode, code)| Experiment {
            name: format!("alignment/{code}"),
            varying: "IOShift",
            points: shifts(cfg.io_size)
                .into_iter()
                .map(|shift| ExperimentPoint {
                    param: shift as f64,
                    param_label: format!("{shift} B"),
                    workload: Workload::Basic(cfg.baseline(lba, mode).with_io_shift(shift)),
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_range_matches_table1() {
        let s = shifts(32 * 1024);
        assert_eq!(s[0], 0, "aligned reference point included");
        assert_eq!(s[1], 512, "2^0 x 512 B");
        assert_eq!(*s.last().unwrap(), 16 * 1024, "largest shift below IOSize");
        assert!(
            !s.contains(&(32 * 1024)),
            "IOShift = IOSize is alignment again"
        );
    }

    #[test]
    fn four_experiments_and_all_points_validate() {
        let exps = experiments(&MicroConfig::quick());
        assert_eq!(exps.len(), 4);
        for e in &exps {
            assert_eq!(e.varying, "IOShift");
            for p in &e.points {
                if let Workload::Basic(s) = &p.workload {
                    s.validate().expect("alignment point must validate");
                }
            }
        }
    }
}
