//! Micro-benchmark 4 — Partitioning (`Partitions`).
//!
//! "The partitioned patterns are a variation of the sequential baseline
//! patterns. We divide the target space into Partitions partitions
//! which are considered in a round robin fashion; within each partition
//! IOs are performed sequentially. This pattern represents, for
//! instance, a merge operation of several buckets during external
//! sort." (§3.2; Table 1: `[2⁰ … 2⁸]`, sequential patterns only.)
//!
//! This produces Hint 5: "Sequential writes should be limited to a few
//! partitions. Concurrent sequential writes to 4–8 different partitions
//! are acceptable; beyond that performance degrades to random writes."

use crate::experiment::{Experiment, ExperimentPoint, Workload};
use crate::micro::MicroConfig;
use uflip_patterns::{LbaFn, Mode};

/// Partition counts swept: `2⁰ … 2⁸`, limited so each partition holds
/// at least one IO.
pub fn partition_counts(cfg: &MicroConfig) -> Vec<u32> {
    (0..=8u32)
        .map(|e| 1u32 << e)
        .filter(|&p| u64::from(p) * cfg.io_size <= cfg.target_size)
        .collect()
}

/// Build the Partitioning experiments (sequential read and write).
pub fn experiments(cfg: &MicroConfig) -> Vec<Experiment> {
    [(Mode::Read, "SR"), (Mode::Write, "SW")]
        .into_iter()
        .map(|(mode, code)| Experiment {
            name: format!("partitioning/{code}"),
            varying: "Partitions",
            points: partition_counts(cfg)
                .into_iter()
                .map(|p| ExperimentPoint {
                    param: f64::from(p),
                    param_label: format!("{p} partitions"),
                    workload: Workload::Basic(
                        cfg.baseline(LbaFn::Sequential, mode)
                            .with_lba(LbaFn::Partitioned { partitions: p }),
                    ),
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_patterns_only() {
        let exps = experiments(&MicroConfig::quick());
        assert_eq!(exps.len(), 2, "SR and SW only, per Table 1");
    }

    #[test]
    fn counts_are_powers_of_two_up_to_256() {
        let mut cfg = MicroConfig::quick();
        cfg.target_size = 1 << 30;
        let c = partition_counts(&cfg);
        assert_eq!(c, vec![1, 2, 4, 8, 16, 32, 64, 128, 256]);
    }

    #[test]
    fn partition_one_is_the_plain_sequential_pattern() {
        let exps = experiments(&MicroConfig::quick());
        match &exps[1].points[0].workload {
            Workload::Basic(s) => {
                assert!(matches!(s.lba, LbaFn::Partitioned { partitions: 1 }));
                // Partitioned(1) must generate the same offsets as Sequential.
                let seq = s.with_lba(LbaFn::Sequential);
                let a: Vec<u64> = s.iter().map(|io| io.offset).collect();
                let b: Vec<u64> = seq.iter().map(|io| io.offset).collect();
                assert_eq!(a, b);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn all_points_validate() {
        for e in experiments(&MicroConfig::quick()) {
            for p in &e.points {
                if let Workload::Basic(s) = &p.workload {
                    s.validate().expect("partitioning point must validate");
                }
            }
        }
    }
}
