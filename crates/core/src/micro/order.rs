//! Micro-benchmark 5 — Order (`Incr`).
//!
//! "The order patterns are another variation on the sequential
//! patterns, where logical blocks are addressed in a given order …
//! a reverse pattern (Incr = −1) represents a data structure accessed
//! in reverse order …, the in-place pattern [Incr = 0] is a
//! pathological pattern for flash chips, while an increasing LBA
//! pattern represents the manipulation of a pre-allocated array, filled
//! by columns or lines." (§3.2; Table 1: `Incr ∈ [−1, 0, 2⁰ … 2⁸]`.)
//!
//! Table 3's last three columns come from this micro-benchmark: the
//! reverse and in-place costs relative to SW, and the large-increment
//! cost relative to RW.

use crate::experiment::{Experiment, ExperimentPoint, Workload};
use crate::micro::MicroConfig;
use uflip_patterns::{LbaFn, Mode};

/// Increment values: −1, 0, then powers of two 1 … 256.
pub fn increments() -> Vec<i64> {
    let mut v = vec![-1i64, 0];
    v.extend((0..=8).map(|e| 1i64 << e));
    v
}

/// Build the Order experiments (sequential read and write variants).
pub fn experiments(cfg: &MicroConfig) -> Vec<Experiment> {
    [(Mode::Read, "SR"), (Mode::Write, "SW")]
        .into_iter()
        .map(|(mode, code)| Experiment {
            name: format!("order/{code}"),
            varying: "Incr",
            points: increments()
                .into_iter()
                .map(|incr| ExperimentPoint {
                    param: incr as f64,
                    param_label: format!("Incr={incr}"),
                    workload: Workload::Basic(
                        cfg.baseline(LbaFn::Sequential, mode)
                            .with_lba(LbaFn::Ordered { incr }),
                    ),
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increment_range_matches_table1() {
        let inc = increments();
        assert_eq!(inc[0], -1, "reverse pattern");
        assert_eq!(inc[1], 0, "in-place pattern");
        assert!(inc.contains(&1) && inc.contains(&256));
        assert_eq!(inc.len(), 11);
    }

    #[test]
    fn in_place_points_pin_a_single_location() {
        let exps = experiments(&MicroConfig::quick());
        let point = &exps[1].points[1]; // SW, Incr = 0
        match &point.workload {
            Workload::Basic(s) => {
                let offsets: std::collections::HashSet<u64> =
                    s.iter().map(|io| io.offset).collect();
                assert_eq!(offsets.len(), 1, "Incr=0 must stay in place");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn reverse_points_descend() {
        let exps = experiments(&MicroConfig::quick());
        let point = &exps[1].points[0]; // SW, Incr = -1
        match &point.workload {
            Workload::Basic(s) => {
                let offs: Vec<u64> = s.iter().map(|io| io.offset).skip(1).take(5).collect();
                for w in offs.windows(2) {
                    assert!(w[1] < w[0], "offsets must descend: {offs:?}");
                }
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn all_points_validate() {
        for e in experiments(&MicroConfig::quick()) {
            for p in &e.points {
                if let Workload::Basic(s) = &p.workload {
                    s.validate().expect("order point must validate");
                }
            }
        }
    }
}
