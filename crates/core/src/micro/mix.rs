//! Micro-benchmark 7 — Mix (`Ratio`).
//!
//! "We compose any two baseline patterns, for a total of six
//! combinations. We vary the ratio to study how such mixes differ from
//! the baselines." (§3.2; Table 1 lists SR/RR, SR/RW, SR/SW, RR/SW,
//! RR/RW, SW/RW with `Ratio ∈ [2⁰ … 2⁶]`.)
//!
//! §5.2's finding (Hint 6): unlike disks, "the Mix patterns did not
//! affect significantly the overall cost of the workloads".

use crate::experiment::{Experiment, ExperimentPoint, Workload};
use crate::micro::MicroConfig;
use uflip_patterns::{LbaFn, MixSpec, Mode};

/// One mixed-pattern combination: majority `(LBA, mode)`, minority
/// `(LBA, mode)`, and the report label.
pub type MixCombo = ((LbaFn, Mode), (LbaFn, Mode), &'static str);

/// The six baseline combinations of Table 1.
pub fn combos() -> Vec<MixCombo> {
    use LbaFn::{Random as R, Sequential as S};
    use Mode::{Read, Write};
    vec![
        ((S, Read), (R, Read), "SR/RR"),
        ((S, Read), (R, Write), "SR/RW"),
        ((S, Read), (S, Write), "SR/SW"),
        ((R, Read), (S, Write), "RR/SW"),
        ((R, Read), (R, Write), "RR/RW"),
        ((S, Write), (R, Write), "SW/RW"),
    ]
}

/// Ratios swept: 1, 2, 4, …, 64.
pub fn ratios() -> Vec<u32> {
    (0..=6u32).map(|e| 1 << e).collect()
}

/// Build the six Mix experiments. Sub-pattern windows are made disjoint
/// (the paper directs sequential writes to distinct target spaces,
/// §4.1).
pub fn experiments(cfg: &MicroConfig) -> Vec<Experiment> {
    combos()
        .into_iter()
        .map(|((lba_a, mode_a), (lba_b, mode_b), code)| Experiment {
            name: format!("mix/{code}"),
            varying: "Ratio",
            points: ratios()
                .into_iter()
                .map(|r| {
                    let a = cfg
                        .baseline(lba_a, mode_a)
                        .with_target(0, cfg.target_size / 2);
                    let b = cfg
                        .baseline(lba_b, mode_b)
                        .with_target(cfg.target_size / 2, cfg.target_size / 2);
                    // Scale the sequence so the minority pattern still
                    // gets a measurable share (paper §5.1: counts are
                    // "automatically scaled … for mixed workloads").
                    let total = cfg.io_count * u64::from(r + 1) / 2;
                    ExperimentPoint {
                        param: f64::from(r),
                        param_label: format!("{r}:1"),
                        workload: Workload::Mixed(MixSpec::new(a, b, r, total)),
                    }
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_combinations_as_in_table1() {
        assert_eq!(combos().len(), 6);
        let exps = experiments(&MicroConfig::quick());
        assert_eq!(exps.len(), 6);
    }

    #[test]
    fn ratios_match_table1() {
        assert_eq!(ratios(), vec![1, 2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn windows_are_disjoint() {
        for e in experiments(&MicroConfig::quick()) {
            for p in &e.points {
                if let Workload::Mixed(m) = &p.workload {
                    let a_end = m.a.target_offset + m.a.target_size;
                    assert!(a_end <= m.b.target_offset, "{}: windows overlap", e.name);
                    m.validate().expect("mix point must validate");
                }
            }
        }
    }

    #[test]
    fn minority_share_grows_with_ratio() {
        let exps = experiments(&MicroConfig::quick());
        let io_counts: Vec<u64> = exps[0]
            .points
            .iter()
            .map(|p| match &p.workload {
                Workload::Mixed(m) => m.io_count,
                _ => unreachable!(),
            })
            .collect();
        assert!(
            io_counts.windows(2).all(|w| w[1] > w[0]),
            "total IOs scale with the ratio: {io_counts:?}"
        );
    }
}
