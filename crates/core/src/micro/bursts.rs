//! Micro-benchmark 9 — Bursts (`Burst`).
//!
//! "This is a variation of the previous micro-benchmark, where the
//! Pause parameter is set to a fixed length (e.g. 100 msec). The Burst
//! parameter is then varied to study how potential asynchronous
//! overhead accumulates in time." (§3.2; Table 1:
//! `Burst ∈ [2⁰ … 2⁶] × 10`, `Pause = 100 ms`.)

use crate::experiment::{Experiment, ExperimentPoint, Workload};
use crate::micro::MicroConfig;
use std::time::Duration;
use uflip_patterns::{LbaFn, Mode, TimingFn};

/// The fixed inter-group pause (100 ms, per Table 1's example).
pub const GROUP_PAUSE: Duration = Duration::from_millis(100);

/// Burst sizes: 10, 20, 40, …, 640.
pub fn burst_sizes() -> Vec<u32> {
    (0..=6u32).map(|e| 10 * (1 << e)).collect()
}

/// Build the four Bursts experiments.
pub fn experiments(cfg: &MicroConfig) -> Vec<Experiment> {
    let baselines = [
        (LbaFn::Sequential, Mode::Read, "SR"),
        (LbaFn::Random, Mode::Read, "RR"),
        (LbaFn::Sequential, Mode::Write, "SW"),
        (LbaFn::Random, Mode::Write, "RW"),
    ];
    baselines
        .into_iter()
        .map(|(lba, mode, code)| Experiment {
            name: format!("bursts/{code}"),
            varying: "Burst",
            points: burst_sizes()
                .into_iter()
                .map(|b| ExperimentPoint {
                    param: f64::from(b),
                    param_label: format!("burst {b}"),
                    workload: Workload::Basic(cfg.baseline(lba, mode).with_timing(
                        TimingFn::Burst {
                            pause: GROUP_PAUSE,
                            burst: b,
                        },
                    )),
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_range_matches_table1() {
        assert_eq!(burst_sizes(), vec![10, 20, 40, 80, 160, 320, 640]);
    }

    #[test]
    fn four_experiments_with_burst_timing() {
        let exps = experiments(&MicroConfig::quick());
        assert_eq!(exps.len(), 4);
        for e in &exps {
            assert_eq!(e.varying, "Burst");
            for p in &e.points {
                match &p.workload {
                    Workload::Basic(s) => {
                        match s.timing {
                            TimingFn::Burst { pause, .. } => assert_eq!(pause, GROUP_PAUSE),
                            _ => panic!("bursts must use burst timing"),
                        }
                        s.validate().expect("burst point must validate");
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
}
