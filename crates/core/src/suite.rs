//! The full uFLIP suite: all nine micro-benchmarks as one benchmark
//! plan, plus the plan executor that applies the §4 methodology
//! (state resets, inter-run pauses, target-space packing) while
//! running it.
//!
//! This is the equivalent of the paper's FlashIO "benchmark plan"
//! execution mode: point it at a device and it produces every
//! experiment's statistics in one pass, suitable for JSON archival
//! (uflip.org published exactly such result sets).

use crate::experiment::Experiment;
use crate::methodology::plan::{BenchmarkPlan, PlanStep};
use crate::methodology::state::enforce_random_state;
use crate::micro::{
    alignment, bursts, granularity, locality, mix, order, parallelism, partitioning, pause,
    MicroConfig,
};
use crate::run::RunResult;
use crate::stats::RunStats;
use crate::Result;
use std::time::Duration;
use uflip_device::BlockDevice;

/// All nine micro-benchmarks under one configuration, in the paper's
/// presentation order (location parameters, then parallel/mixed, then
/// timing parameters — §3.2).
pub fn full_suite(cfg: &MicroConfig) -> Vec<Experiment> {
    let mut all = Vec::new();
    all.extend(granularity::experiments(cfg));
    all.extend(alignment::experiments(cfg));
    all.extend(locality::experiments(cfg));
    all.extend(partitioning::experiments(cfg));
    all.extend(order::experiments(cfg));
    all.extend(parallelism::experiments(cfg));
    all.extend(mix::experiments(cfg));
    all.extend(pause::experiments(cfg));
    all.extend(bursts::experiments(cfg));
    all
}

/// Execution options for a benchmark plan.
#[derive(Debug, Clone, Copy)]
pub struct SuiteOptions {
    /// Inter-run pause (§4.3; calibrate with
    /// [`crate::methodology::pause::calibrate_pause`]).
    pub inter_run_pause: Duration,
    /// Enforce the random state before the first run and at every
    /// [`PlanStep::ResetState`].
    pub enforce_state: bool,
    /// Coverage multiple for state enforcement (≥ 1 + over-provisioning
    /// so the pools reach steady state; see CharacterizeConfig).
    pub state_coverage: f64,
    /// Seed for state enforcement.
    pub seed: u64,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        SuiteOptions {
            inter_run_pause: Duration::from_secs(5),
            enforce_state: true,
            state_coverage: 2.0,
            seed: 0xF11B,
        }
    }
}

/// One executed plan step's outcome.
#[derive(Debug, Clone)]
pub struct SuitePointResult {
    /// Experiment name (e.g. `locality/RW`).
    pub experiment: String,
    /// Varying parameter name.
    pub varying: &'static str,
    /// Parameter value at this point.
    pub param: f64,
    /// Parameter label.
    pub param_label: String,
    /// Workload label.
    pub workload: String,
    /// Summary statistics over the running phase.
    pub stats: Option<RunStats>,
}

/// The outcome of running a whole plan.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Per-point results in execution order.
    pub points: Vec<SuitePointResult>,
    /// State resets performed.
    pub resets: usize,
    /// Total device time consumed.
    pub device_time: Duration,
}

impl SuiteResult {
    /// Collect the results of one experiment back into sweep order.
    pub fn experiment(&self, name: &str) -> Vec<&SuitePointResult> {
        let mut pts: Vec<&SuitePointResult> = self
            .points
            .iter()
            .filter(|p| p.experiment == name)
            .collect();
        pts.sort_by(|a, b| a.param.total_cmp(&b.param));
        pts
    }

    /// Reconstruct `(param, mean ms)` series per experiment.
    pub fn mean_series(&self, name: &str) -> Vec<(f64, f64)> {
        self.experiment(name)
            .iter()
            .filter_map(|p| p.stats.map(|s| (p.param, s.mean_ms())))
            .collect()
    }
}

/// Execute a benchmark plan against a device, honouring resets and
/// pauses. Workloads are relocated to the offsets the plan allocated.
pub fn execute_plan(
    dev: &mut dyn BlockDevice,
    plan: &BenchmarkPlan,
    opts: &SuiteOptions,
) -> Result<SuiteResult> {
    let t0 = dev.now();
    if opts.enforce_state {
        enforce_random_state(dev, 128 * 1024, opts.state_coverage, opts.seed)?;
        dev.idle(opts.inter_run_pause);
    }
    let mut points = Vec::new();
    let mut resets = 0;
    for step in &plan.steps {
        match step {
            PlanStep::Pause => dev.idle(opts.inter_run_pause),
            PlanStep::ResetState => {
                if opts.enforce_state {
                    enforce_random_state(dev, 128 * 1024, opts.state_coverage, opts.seed)?;
                    dev.idle(opts.inter_run_pause);
                }
                resets += 1;
            }
            PlanStep::Run {
                experiment,
                point,
                offset,
            } => {
                let e = &plan.experiments[*experiment];
                let p = &e.points[*point];
                let workload = p.workload.relocated(*offset);
                let run: RunResult = workload.execute(dev)?;
                points.push(SuitePointResult {
                    experiment: e.name.clone(),
                    varying: e.varying,
                    param: p.param,
                    param_label: p.param_label.clone(),
                    workload: workload.label(),
                    stats: run.summary(),
                });
            }
        }
    }
    Ok(SuiteResult {
        points,
        resets,
        device_time: dev.now() - t0,
    })
}

/// Convenience: build the plan for a device and run the full suite.
pub fn run_full_suite(
    dev: &mut dyn BlockDevice,
    cfg: &MicroConfig,
    opts: &SuiteOptions,
) -> Result<(BenchmarkPlan, SuiteResult)> {
    let plan = BenchmarkPlan::build(full_suite(cfg), dev.capacity_bytes());
    let result = execute_plan(dev, &plan, opts)?;
    Ok((plan, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uflip_device::MemDevice;

    const MB: u64 = 1024 * 1024;

    fn quick_cfg() -> MicroConfig {
        let mut cfg = MicroConfig::quick();
        cfg.io_count = 8;
        cfg.io_count_rw = 8;
        cfg.target_size = 2 * MB;
        cfg
    }

    #[test]
    fn full_suite_contains_all_nine_micro_benchmarks() {
        let suite = full_suite(&quick_cfg());
        let families: std::collections::BTreeSet<&str> = suite
            .iter()
            .map(|e| e.name.split('/').next().expect("has /"))
            .collect();
        assert_eq!(
            families.into_iter().collect::<Vec<_>>(),
            vec![
                "alignment",
                "bursts",
                "granularity",
                "locality",
                "mix",
                "order",
                "parallelism",
                "partitioning",
                "pause"
            ]
        );
    }

    #[test]
    fn plan_execution_runs_every_point() {
        let cfg = quick_cfg();
        let mut dev = MemDevice::new(64 * MB, Duration::from_micros(50), 0);
        let opts = SuiteOptions {
            inter_run_pause: Duration::from_millis(1),
            enforce_state: false,
            ..Default::default()
        };
        let (plan, result) = run_full_suite(&mut dev, &cfg, &opts).expect("suite");
        assert_eq!(result.points.len(), plan.run_count());
        assert!(result.points.iter().all(|p| p.stats.is_some()));
        assert!(result.device_time > Duration::ZERO);
    }

    #[test]
    fn series_reconstruction_is_sorted_by_param() {
        let cfg = quick_cfg();
        let mut dev = MemDevice::new(64 * MB, Duration::from_micros(50), 1);
        let opts = SuiteOptions {
            inter_run_pause: Duration::from_millis(1),
            enforce_state: false,
            ..Default::default()
        };
        let (_, result) = run_full_suite(&mut dev, &cfg, &opts).expect("suite");
        let series = result.mean_series("granularity/SW");
        assert!(!series.is_empty());
        assert!(series.windows(2).all(|w| w[0].0 <= w[1].0));
        // Linear-cost device: bigger IOs never get cheaper.
        assert!(series.first().expect("non-empty").1 <= series.last().expect("non-empty").1);
    }

    #[test]
    fn state_enforcement_runs_when_enabled() {
        let cfg = quick_cfg();
        let mut dev = MemDevice::new(16 * MB, Duration::from_micros(1), 0);
        let opts = SuiteOptions {
            inter_run_pause: Duration::from_millis(1),
            enforce_state: true,
            state_coverage: 0.5,
            seed: 3,
        };
        let before = dev.writes();
        let _ = run_full_suite(&mut dev, &cfg, &opts).expect("suite");
        assert!(
            dev.writes() > before,
            "enforcement + workload writes happened"
        );
    }
}
