//! The full uFLIP suite: all nine micro-benchmarks as one benchmark
//! plan, plus the plan executor that applies the §4 methodology
//! (state resets, inter-run pauses, target-space packing) while
//! running it.
//!
//! This is the equivalent of the paper's FlashIO "benchmark plan"
//! execution mode: point it at a device and it produces every
//! experiment's statistics in one pass, suitable for JSON archival
//! (uflip.org published exactly such result sets).

use crate::experiment::Experiment;
use crate::methodology::plan::{BenchmarkPlan, PlanStep};
use crate::methodology::state::enforce_random_state;
use crate::micro::{
    alignment, bursts, granularity, locality, mix, order, parallelism, partitioning, pause,
    MicroConfig,
};
use crate::run::RunResult;
use crate::stats::RunStats;
use crate::Result;
use std::time::Duration;
use uflip_device::{BlockDevice, DeviceError};

/// All nine micro-benchmarks under one configuration, in the paper's
/// presentation order (location parameters, then parallel/mixed, then
/// timing parameters — §3.2).
pub fn full_suite(cfg: &MicroConfig) -> Vec<Experiment> {
    let mut all = Vec::new();
    all.extend(granularity::experiments(cfg));
    all.extend(alignment::experiments(cfg));
    all.extend(locality::experiments(cfg));
    all.extend(partitioning::experiments(cfg));
    all.extend(order::experiments(cfg));
    all.extend(parallelism::experiments(cfg));
    all.extend(mix::experiments(cfg));
    all.extend(pause::experiments(cfg));
    all.extend(bursts::experiments(cfg));
    all
}

/// Execution options for a benchmark plan.
#[derive(Debug, Clone, Copy)]
pub struct SuiteOptions {
    /// Inter-run pause (§4.3; calibrate with
    /// [`crate::methodology::pause::calibrate_pause`]).
    pub inter_run_pause: Duration,
    /// Enforce the random state before the first run and at every
    /// [`PlanStep::ResetState`].
    pub enforce_state: bool,
    /// Coverage multiple for state enforcement (≥ 1 + over-provisioning
    /// so the pools reach steady state; see CharacterizeConfig).
    pub state_coverage: f64,
    /// Seed for state enforcement.
    pub seed: u64,
    /// Serve [`PlanStep::ResetState`] by restoring a snapshot of the
    /// enforced state instead of re-simulating the enforcement.
    ///
    /// The enforced state is a pure function of (device, seed,
    /// coverage, max IO size), so it is memoized once — captured via
    /// [`uflip_device::BlockDevice::snapshot_state`] right after the
    /// initial enforcement — and every reset becomes a deep copy
    /// (milliseconds) instead of a re-run of coverage × capacity of
    /// random writes through the full FTL (the dominant cost of
    /// `execute_plan` on simulated devices; 5 hours to 35 days on the
    /// paper's hardware). Devices without snapshot support fall back
    /// to re-enforcement. Also a precondition for
    /// [`execute_plan_sharded`]: restored resets make the plan's
    /// reset-delimited segments independent.
    pub snapshot_resets: bool,
    /// IO policy applied to every workload run: transient device
    /// faults (e.g. injected by [`uflip_device::FaultyDevice`]) are
    /// retried with backoff instead of aborting the plan. `None`
    /// (the default) keeps the plain executors — bit-identical to the
    /// pre-policy behaviour.
    pub io_policy: Option<crate::policy::IoPolicy>,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        SuiteOptions {
            inter_run_pause: Duration::from_secs(5),
            enforce_state: true,
            state_coverage: 2.0,
            seed: 0xF11B,
            snapshot_resets: true,
            io_policy: None,
        }
    }
}

/// One executed plan step's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SuitePointResult {
    /// Experiment name (e.g. `locality/RW`).
    pub experiment: String,
    /// Varying parameter name.
    pub varying: &'static str,
    /// Parameter value at this point.
    pub param: f64,
    /// Parameter label.
    pub param_label: String,
    /// Workload label.
    pub workload: String,
    /// Summary statistics over the running phase.
    pub stats: Option<RunStats>,
}

/// The outcome of running a whole plan.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteResult {
    /// Per-point results in execution order.
    pub points: Vec<SuitePointResult>,
    /// State resets performed.
    pub resets: usize,
    /// Total device time consumed.
    pub device_time: Duration,
}

impl SuiteResult {
    /// Collect the results of one experiment back into sweep order.
    pub fn experiment(&self, name: &str) -> Vec<&SuitePointResult> {
        let mut pts: Vec<&SuitePointResult> = self
            .points
            .iter()
            .filter(|p| p.experiment == name)
            .collect();
        pts.sort_by(|a, b| a.param.total_cmp(&b.param));
        pts
    }

    /// Reconstruct `(param, mean ms)` series per experiment.
    pub fn mean_series(&self, name: &str) -> Vec<(f64, f64)> {
        self.experiment(name)
            .iter()
            .filter_map(|p| p.stats.map(|s| (p.param, s.mean_ms())))
            .collect()
    }
}

/// The §4.1 state-enforcement IO-size ceiling (the flash block size,
/// 128 KB in the paper) — shared by every reset path so a memoized
/// snapshot and a re-enforcement are interchangeable.
const ENFORCE_MAX_IO: u64 = 128 * 1024;

/// Enforce the random state and settle with the inter-run pause.
fn enforce_and_settle(dev: &mut dyn BlockDevice, opts: &SuiteOptions) -> Result<()> {
    enforce_random_state(dev, ENFORCE_MAX_IO, opts.state_coverage, opts.seed)?;
    dev.idle(opts.inter_run_pause);
    Ok(())
}

/// Execute one contiguous slice of plan steps (no [`PlanStep::
/// ResetState`] inside) — the shared inner loop of the serial and
/// sharded executors.
///
/// With an enabled sink, each run's running-phase response times are
/// recorded under the workload's latency class. `per_run_deltas`
/// additionally brackets every run with a counter snapshot and emits
/// the delta as a [`uflip_obs::WorkloadMetrics`] record; the sharded
/// executor turns this off because concurrent segments would bleed
/// into each other's deltas (the global counters, histograms and
/// channel samples stay exact — they are sums, not differences).
fn execute_steps(
    dev: &mut dyn BlockDevice,
    plan: &BenchmarkPlan,
    opts: &SuiteOptions,
    steps: &[PlanStep],
    points: &mut Vec<SuitePointResult>,
    sink: &uflip_obs::SinkHandle,
    per_run_deltas: bool,
) -> Result<()> {
    let observed = sink.is_enabled();
    for step in steps {
        match step {
            PlanStep::Pause => dev.idle(opts.inter_run_pause),
            PlanStep::ResetState => {
                return Err(DeviceError::Internal(
                    "ResetState inside a segment; segments are split at reset boundaries",
                ));
            }
            PlanStep::Run {
                experiment,
                point,
                offset,
            } => {
                let e = &plan.experiments[*experiment];
                let p = &e.points[*point];
                let workload = p.workload.relocated(*offset);
                let before =
                    (observed && per_run_deltas).then(|| crate::observe::counters_now(sink));
                let run: RunResult = match &opts.io_policy {
                    Some(policy) => workload.execute_with_policy(dev, policy, sink)?,
                    None => workload.execute(dev)?,
                };
                if observed {
                    crate::observe::record_run_latencies(sink, workload.latency_class(), &run);
                    if let Some(before) = &before {
                        crate::observe::emit_workload_delta(sink, &workload.label(), before);
                    }
                }
                points.push(SuitePointResult {
                    experiment: e.name.clone(),
                    varying: e.varying,
                    param: p.param,
                    param_label: p.param_label.clone(),
                    workload: workload.label(),
                    stats: run.summary(),
                });
            }
        }
    }
    Ok(())
}

/// The plan's reset-delimited segments: step ranges separated by (and
/// excluding) every [`PlanStep::ResetState`]. With resets served by
/// snapshot restore, each segment starts from the *same* device state,
/// so segments are mutually independent — the unit of sharding.
fn plan_segments(plan: &BenchmarkPlan) -> Vec<std::ops::Range<usize>> {
    let mut segments = Vec::new();
    let mut start = 0usize;
    for (i, step) in plan.steps.iter().enumerate() {
        if matches!(step, PlanStep::ResetState) {
            segments.push(start..i);
            start = i + 1;
        }
    }
    segments.push(start..plan.steps.len());
    segments
}

/// Execute a benchmark plan against a device, honouring resets and
/// pauses. Workloads are relocated to the offsets the plan allocated.
///
/// With [`SuiteOptions::snapshot_resets`] on (the default) and a
/// snapshot-capable device, the enforced state is captured once and
/// every [`PlanStep::ResetState`] restores it in O(memcpy) — including
/// the virtual clock, so [`SuiteResult::device_time`] sums the
/// enforcement and the per-segment device time. Devices without
/// snapshot support (and runs with `snapshot_resets` off) re-simulate
/// the enforcement at every reset, the paper-literal behaviour.
pub fn execute_plan(
    dev: &mut dyn BlockDevice,
    plan: &BenchmarkPlan,
    opts: &SuiteOptions,
) -> Result<SuiteResult> {
    execute_plan_observed(dev, plan, opts, &uflip_obs::SinkHandle::null())
}

/// Observed [`execute_plan`]: attach `sink` to the device before the
/// plan runs, so state enforcement and every workload feed its
/// counters, histograms and channel samples; each run additionally
/// emits a per-workload [`uflip_obs::WorkloadMetrics`] delta (write
/// amplification, host vs flash bytes). With a null sink this is
/// exactly [`execute_plan`].
pub fn execute_plan_observed(
    dev: &mut dyn BlockDevice,
    plan: &BenchmarkPlan,
    opts: &SuiteOptions,
    sink: &uflip_obs::SinkHandle,
) -> Result<SuiteResult> {
    dev.set_sink(sink.clone());
    let t0 = dev.now();
    if opts.enforce_state {
        enforce_and_settle(dev, opts)?;
    }
    // Memoize the enforced state (it depends only on the device,
    // seed, coverage and IO ceiling — all fixed for this plan) the
    // first time a reset will need it.
    let snapshot = if opts.enforce_state
        && opts.snapshot_resets
        && dev.snapshot_capable()
        && plan.steps.iter().any(|s| matches!(s, PlanStep::ResetState))
    {
        dev.snapshot_state()
    } else {
        None
    };
    let mut points = Vec::new();
    let mut resets = 0;
    let mut device_time = Duration::ZERO;
    let mut seg_start = t0;
    let mut cursor = 0usize;
    for (i, step) in plan.steps.iter().enumerate() {
        if !matches!(step, PlanStep::ResetState) {
            continue;
        }
        execute_steps(
            dev,
            plan,
            opts,
            &plan.steps[cursor..i],
            &mut points,
            sink,
            true,
        )?;
        cursor = i + 1;
        resets += 1;
        match &snapshot {
            Some(state) => {
                // Restoring rewinds the clock to the snapshot instant;
                // bank this segment's device time first.
                device_time += dev.now() - seg_start;
                dev.restore_state(state.as_ref())?;
                seg_start = dev.now();
            }
            None => {
                if opts.enforce_state {
                    enforce_and_settle(dev, opts)?;
                }
            }
        }
    }
    execute_steps(
        dev,
        plan,
        opts,
        &plan.steps[cursor..],
        &mut points,
        sink,
        true,
    )?;
    device_time += dev.now() - seg_start;
    Ok(SuiteResult {
        points,
        resets,
        device_time,
    })
}

/// Execute a benchmark plan with its reset-delimited segments sharded
/// across OS threads, each running on an independent clone of the
/// enforced device state.
///
/// Requires state enforcement with snapshot resets on a device that
/// supports [`uflip_device::BlockDevice::snapshot_state`] and
/// [`uflip_device::BlockDevice::fork`]; every other case (including a
/// plan without resets, which is a single segment) falls back to the
/// serial [`execute_plan`], so this is always safe to call.
///
/// Virtual time makes the decomposition exact: each segment starts
/// from the same restored snapshot a serial execution would restore,
/// so the merged [`SuiteResult`] — points in plan order, reset count,
/// summed device time — is **bit-identical** to the serial path's
/// (asserted in `tests/snapshot_parallel.rs`). `threads` caps the
/// worker count; 0 means one per available CPU. The device itself is
/// left in the post-enforcement state.
pub fn execute_plan_sharded(
    dev: &mut dyn BlockDevice,
    plan: &BenchmarkPlan,
    opts: &SuiteOptions,
    threads: usize,
) -> Result<SuiteResult> {
    execute_plan_sharded_observed(dev, plan, opts, threads, &uflip_obs::SinkHandle::null())
}

/// Observed [`execute_plan_sharded`]: the sink is attached to the
/// enforcing device *and* to every worker fork, so counters,
/// histograms and channel samples aggregate across all segments
/// (sharded sinks like `uflip_obs::Metrics` are thread-safe by
/// construction). Per-workload [`uflip_obs::WorkloadMetrics`] deltas
/// are **not** emitted here — concurrent segments would bleed into
/// each other's differences; use the serial [`execute_plan_observed`]
/// when per-workload write amplification matters. The measured
/// `SuiteResult` stays bit-identical to the serial path's.
pub fn execute_plan_sharded_observed(
    dev: &mut dyn BlockDevice,
    plan: &BenchmarkPlan,
    opts: &SuiteOptions,
    threads: usize,
    sink: &uflip_obs::SinkHandle,
) -> Result<SuiteResult> {
    let segments = plan_segments(plan);
    let shardable =
        opts.enforce_state && opts.snapshot_resets && segments.len() > 1 && dev.snapshot_capable();
    if !shardable {
        return execute_plan_observed(dev, plan, opts, sink);
    }
    dev.set_sink(sink.clone());
    let t0 = dev.now();
    enforce_and_settle(dev, opts)?;
    let base = dev.now();
    let snapshot = dev.snapshot_state().ok_or(DeviceError::Internal(
        "snapshot-capable device returned no snapshot",
    ))?;
    let workers = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
    .clamp(1, segments.len());
    // Round-robin segment assignment; results are keyed by segment
    // index, so the merge order never depends on thread scheduling.
    type SegmentOutcome = (usize, Vec<SuitePointResult>, Duration);
    let per_worker: Vec<Result<Vec<SegmentOutcome>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                // uflip-lint: allow(UF002, UF031, reason = "fork precondition checked by the snapshot_state gate above; no Result plumbing inside thread::scope closures")
                let mut fork = dev.fork().expect("snapshot_capable devices support fork");
                fork.set_sink(sink.clone());
                let state = snapshot.clone();
                let segments = &segments;
                let assigned: Vec<usize> = (w..segments.len()).step_by(workers).collect();
                scope.spawn(move || -> Result<Vec<SegmentOutcome>> {
                    let mut out = Vec::with_capacity(assigned.len());
                    for seg in assigned {
                        fork.restore_state(state.as_ref())?;
                        let mut points = Vec::new();
                        execute_steps(
                            fork.as_mut(),
                            plan,
                            opts,
                            &plan.steps[segments[seg].clone()],
                            &mut points,
                            sink,
                            false,
                        )?;
                        out.push((seg, points, fork.now() - base));
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            // uflip-lint: allow(UF002, UF031, reason = "join propagates a worker thread's panic; swallowing it would fake results")
            .map(|h| h.join().expect("plan segment threads do not panic"))
            .collect()
    });
    let mut by_segment: Vec<Option<(Vec<SuitePointResult>, Duration)>> =
        (0..segments.len()).map(|_| None).collect();
    for worker in per_worker {
        for (seg, points, elapsed) in worker? {
            by_segment[seg] = Some((points, elapsed));
        }
    }
    let mut points = Vec::new();
    let mut device_time = base - t0;
    for seg in by_segment {
        let (p, elapsed) = seg.ok_or(DeviceError::Internal(
            "segment missing from every worker's results",
        ))?;
        points.extend(p);
        device_time += elapsed;
    }
    Ok(SuiteResult {
        points,
        resets: segments.len() - 1,
        device_time,
    })
}

/// Convenience: build the plan for a device and run the full suite.
pub fn run_full_suite(
    dev: &mut dyn BlockDevice,
    cfg: &MicroConfig,
    opts: &SuiteOptions,
) -> Result<(BenchmarkPlan, SuiteResult)> {
    let plan = BenchmarkPlan::build(full_suite(cfg), dev.capacity_bytes());
    let result = execute_plan(dev, &plan, opts)?;
    Ok((plan, result))
}

/// Convenience: [`run_full_suite`] with an observability sink attached
/// (see [`execute_plan_observed`]).
pub fn run_full_suite_observed(
    dev: &mut dyn BlockDevice,
    cfg: &MicroConfig,
    opts: &SuiteOptions,
    sink: &uflip_obs::SinkHandle,
) -> Result<(BenchmarkPlan, SuiteResult)> {
    let plan = BenchmarkPlan::build(full_suite(cfg), dev.capacity_bytes());
    let result = execute_plan_observed(dev, &plan, opts, sink)?;
    Ok((plan, result))
}

/// Convenience: build the plan for a device and run the full suite
/// with reset-delimited segments sharded across `threads` workers
/// (0 = one per CPU). See [`execute_plan_sharded`].
pub fn run_full_suite_sharded(
    dev: &mut dyn BlockDevice,
    cfg: &MicroConfig,
    opts: &SuiteOptions,
    threads: usize,
) -> Result<(BenchmarkPlan, SuiteResult)> {
    run_full_suite_sharded_observed(dev, cfg, opts, threads, &uflip_obs::SinkHandle::null())
}

/// Convenience: [`run_full_suite_sharded`] with an observability sink
/// attached (see [`execute_plan_sharded_observed`] for what sharded
/// execution does and does not record).
pub fn run_full_suite_sharded_observed(
    dev: &mut dyn BlockDevice,
    cfg: &MicroConfig,
    opts: &SuiteOptions,
    threads: usize,
    sink: &uflip_obs::SinkHandle,
) -> Result<(BenchmarkPlan, SuiteResult)> {
    let plan = BenchmarkPlan::build(full_suite(cfg), dev.capacity_bytes());
    let result = execute_plan_sharded_observed(dev, &plan, opts, threads, sink)?;
    Ok((plan, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uflip_device::MemDevice;

    const MB: u64 = 1024 * 1024;

    fn quick_cfg() -> MicroConfig {
        let mut cfg = MicroConfig::quick();
        cfg.io_count = 8;
        cfg.io_count_rw = 8;
        cfg.target_size = 2 * MB;
        cfg
    }

    #[test]
    fn full_suite_contains_all_nine_micro_benchmarks() {
        let suite = full_suite(&quick_cfg());
        let families: std::collections::BTreeSet<&str> = suite
            .iter()
            .map(|e| e.name.split('/').next().expect("has /"))
            .collect();
        assert_eq!(
            families.into_iter().collect::<Vec<_>>(),
            vec![
                "alignment",
                "bursts",
                "granularity",
                "locality",
                "mix",
                "order",
                "parallelism",
                "partitioning",
                "pause"
            ]
        );
    }

    #[test]
    fn plan_execution_runs_every_point() {
        let cfg = quick_cfg();
        let mut dev = MemDevice::new(64 * MB, Duration::from_micros(50), 0);
        let opts = SuiteOptions {
            inter_run_pause: Duration::from_millis(1),
            enforce_state: false,
            ..Default::default()
        };
        let (plan, result) = run_full_suite(&mut dev, &cfg, &opts).expect("suite");
        assert_eq!(result.points.len(), plan.run_count());
        assert!(result.points.iter().all(|p| p.stats.is_some()));
        assert!(result.device_time > Duration::ZERO);
    }

    #[test]
    fn series_reconstruction_is_sorted_by_param() {
        let cfg = quick_cfg();
        let mut dev = MemDevice::new(64 * MB, Duration::from_micros(50), 1);
        let opts = SuiteOptions {
            inter_run_pause: Duration::from_millis(1),
            enforce_state: false,
            ..Default::default()
        };
        let (_, result) = run_full_suite(&mut dev, &cfg, &opts).expect("suite");
        let series = result.mean_series("granularity/SW");
        assert!(!series.is_empty());
        assert!(series.windows(2).all(|w| w[0].0 <= w[1].0));
        // Linear-cost device: bigger IOs never get cheaper.
        assert!(series.first().expect("non-empty").1 <= series.last().expect("non-empty").1);
    }

    #[test]
    fn state_enforcement_runs_when_enabled() {
        let cfg = quick_cfg();
        let mut dev = MemDevice::new(16 * MB, Duration::from_micros(1), 0);
        let opts = SuiteOptions {
            inter_run_pause: Duration::from_millis(1),
            enforce_state: true,
            state_coverage: 0.5,
            seed: 3,
            ..Default::default()
        };
        let before = dev.writes();
        let _ = run_full_suite(&mut dev, &cfg, &opts).expect("suite");
        assert!(
            dev.writes() > before,
            "enforcement + workload writes happened"
        );
    }
}
