//! Trace replay: drive a device with a captured (or generated)
//! [`Trace`] through the submit/poll executor.
//!
//! Two modes answer two different questions:
//!
//! * [`ReplayMode::TimingFaithful`] — *"what would this device have
//!   done under exactly this workload?"* Submissions honor the trace's
//!   recorded inter-arrival gaps (mapped onto the device's clock), and
//!   the queue depth is the deepest one the capture observed. Replaying
//!   a capture on an identical device reproduces the capture — the
//!   round-trip check that validates both the recorder and the engine.
//! * [`ReplayMode::OpenLoop`] — *"how fast could this device drain
//!   this workload?"* Timestamps are ignored; IOs are submitted as fast
//!   as NCQ admission allows at a chosen queue depth. Sweeping the
//!   depth turns any trace into a parallelism micro-benchmark: the
//!   paper's question (Hint 7) asked of a *real* request stream instead
//!   of a synthetic pattern.
//!
//! Both modes go through the device's [`IoQueue`] when it has one
//! (depth 1 reproduces the synchronous path bit-for-bit — see PR 1's
//! queue-engine guarantees) and fall back to synchronous issue
//! otherwise, so every backend — mem, sim, direct — can serve a
//! replay. Real devices serve it through their wall-clock
//! [`uflip_device::ThreadedIoQueue`]: there `submit(at)` means
//! "start no earlier than `at`" (faithful mode's recorded gaps become
//! actual waiting), `next_completion` only reports completions that
//! have already landed, and `poll` blocks while IOs are in flight —
//! all of which this engine's event loop already tolerates (the
//! monotone `cursor` keeps intended-submission bookkeeping sound even
//! when completions arrive "late" relative to the schedule).
//!
//! The recorded response time of each IO is *completion − intended
//! submission*: queueing delay behind a backlogged device counts, just
//! as a host thread would measure it.

use crate::policy::{self, IoPolicy, SubmitOutcome};
use crate::run::RunResult;
use crate::slab::TokenSlab;
use crate::Result;
use std::time::Duration;
use uflip_device::{BlockDevice, DeviceError, Token};
use uflip_patterns::{IoRequest, Mode};
use uflip_trace::Trace;

/// How to schedule a trace's submissions (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// Honor recorded inter-arrival gaps; queue depth = the capture's
    /// deepest observed queue.
    TimingFaithful,
    /// Ignore timestamps; submit as fast as admission allows at the
    /// given queue depth.
    OpenLoop {
        /// NCQ depth to request from the device for the run.
        queue_depth: u32,
    },
}

impl ReplayMode {
    /// Short code used in run labels (`faithful`, `open-qd8`).
    pub fn code(&self) -> String {
        match self {
            ReplayMode::TimingFaithful => "faithful".to_string(),
            ReplayMode::OpenLoop { queue_depth } => format!("open-qd{queue_depth}"),
        }
    }
}

/// Replay a trace against a device. Records must be in submission
/// order ([`Trace::is_time_ordered`]); sort first if unsure. Returns
/// the per-IO response-time trace of the replay (same shape every
/// executor produces), with `elapsed` spanning first submission to
/// last completion.
pub fn replay_trace(
    dev: &mut dyn BlockDevice,
    trace: &Trace,
    mode: ReplayMode,
) -> Result<RunResult> {
    let label = format!("replay({},{})", trace.label, mode.code());
    if trace.is_empty() {
        return Ok(RunResult::new(label, Vec::new(), 0, Duration::ZERO));
    }
    assert!(
        trace.is_time_ordered(),
        "replay requires submit-ordered records; call Trace::sort_by_submit first"
    );
    let queued = dev.io_queue().is_some();
    match (mode, queued) {
        (ReplayMode::TimingFaithful, true) => {
            let depth = trace.max_queue_depth().max(1);
            replay_queued(dev, trace, label, depth, true)
        }
        (ReplayMode::TimingFaithful, false) => replay_faithful_serial(dev, trace, label),
        (ReplayMode::OpenLoop { queue_depth }, true) => {
            replay_queued(dev, trace, label, queue_depth.max(1), false)
        }
        (ReplayMode::OpenLoop { .. }, false) => replay_open_serial(dev, trace, label),
    }
}

/// Observed [`replay_trace`]: attach `sink` to the device, replay the
/// trace, then record each IO's response time under the latency class
/// of its *recorded op* (reads and writes land in separate
/// histograms, unlike the single-class pattern executors) and emit
/// the replay's counter delta as a [`uflip_obs::WorkloadMetrics`]
/// record. With a null sink this is exactly [`replay_trace`].
pub fn replay_trace_observed(
    dev: &mut dyn BlockDevice,
    trace: &Trace,
    mode: ReplayMode,
    sink: &uflip_obs::SinkHandle,
) -> Result<RunResult> {
    dev.set_sink(sink.clone());
    if !sink.is_enabled() {
        return replay_trace(dev, trace, mode);
    }
    let before = crate::observe::counters_now(sink);
    let run = replay_trace(dev, trace, mode)?;
    for (rec, rt) in trace.records.iter().zip(&run.rts) {
        let class = match rec.op {
            Mode::Read => uflip_obs::LatencyClass::Read,
            Mode::Write => uflip_obs::LatencyClass::Write,
        };
        sink.latency(class, rt.as_nanos() as u64);
    }
    crate::observe::emit_workload_delta(sink, &run.label, &before);
    Ok(run)
}

/// Observed [`replay_trace`] under an [`IoPolicy`]: transient faults
/// met during submission are retried with backoff, timeouts and
/// exhaustions are counted, and a degrading policy lets the replay
/// survive unservable IOs. With the noop policy this is exactly
/// [`replay_trace_observed`].
///
/// The policy-aware queued path submits per IO (no
/// [`uflip_device::IoQueue::submit_batch`] fast path): each submission
/// is a fault-injection point and needs individual retry handling.
pub fn replay_trace_with_policy(
    dev: &mut dyn BlockDevice,
    trace: &Trace,
    mode: ReplayMode,
    io_policy: &IoPolicy,
    sink: &uflip_obs::SinkHandle,
) -> Result<RunResult> {
    if io_policy.is_noop() {
        return replay_trace_observed(dev, trace, mode, sink);
    }
    dev.set_sink(sink.clone());
    let enabled = sink.is_enabled();
    let label = format!("replay({},{})", trace.label, mode.code());
    if trace.is_empty() {
        return Ok(RunResult::new(label, Vec::new(), 0, Duration::ZERO));
    }
    assert!(
        trace.is_time_ordered(),
        "replay requires submit-ordered records; call Trace::sort_by_submit first"
    );
    let before = enabled.then(|| crate::observe::counters_now(sink));
    let queued = dev.io_queue().is_some();
    let run = match (mode, queued) {
        (ReplayMode::TimingFaithful, true) => {
            let depth = trace.max_queue_depth().max(1);
            replay_queued_with_policy(dev, trace, label, depth, true, io_policy, sink, enabled)
        }
        (ReplayMode::OpenLoop { queue_depth }, true) => replay_queued_with_policy(
            dev,
            trace,
            label,
            queue_depth.max(1),
            false,
            io_policy,
            sink,
            enabled,
        ),
        (_, false) => replay_serial_with_policy(dev, trace, label, mode, io_policy, sink, enabled),
    }?;
    if enabled {
        for (rec, rt) in trace.records.iter().zip(&run.rts) {
            let class = match rec.op {
                Mode::Read => uflip_obs::LatencyClass::Read,
                Mode::Write => uflip_obs::LatencyClass::Write,
            };
            sink.latency(class, rt.as_nanos() as u64);
        }
        if let Some(before) = &before {
            crate::observe::emit_workload_delta(sink, &run.label, before);
        }
    }
    Ok(run)
}

/// The policy-aware twin of [`replay_queued`]: one per-record loop
/// serves both modes (faithful targets the recorded schedule,
/// open-loop targets the running cursor), with submissions mediated by
/// [`policy::submit_with_policy`].
#[allow(clippy::too_many_arguments)]
fn replay_queued_with_policy(
    dev: &mut dyn BlockDevice,
    trace: &Trace,
    label: String,
    depth: u32,
    faithful: bool,
    io_policy: &IoPolicy,
    sink: &uflip_obs::SinkHandle,
    enabled: bool,
) -> Result<RunResult> {
    let mut rng = io_policy.jitter_seed;
    let base = dev.now();
    let queue = dev
        .io_queue()
        .ok_or(DeviceError::Internal("device lost its queue mid-replay"))?;
    let device_depth = queue.queue_depth();
    queue.set_queue_depth(depth)?;
    let t0 = trace.records[0].submit_ns;
    let n = trace.records.len();
    let mut rts = vec![Duration::ZERO; n];
    let mut inflight: TokenSlab<(usize, Duration)> = TokenSlab::new();
    let mut retired: Vec<(Token, Duration)> = Vec::with_capacity(depth as usize + 1);
    let mut last_completion = base;
    let mut cursor = base;
    macro_rules! bail {
        ($queue:ident, $e:expr) => {{
            while $queue.poll().is_some() {}
            if $queue.queue_depth() != device_depth {
                // uflip-lint: allow(UF030, reason = "error path: the primary error outranks a failed depth restore")
                let _ = $queue.set_queue_depth(device_depth);
            }
            return Err($e);
        }};
    }
    for (i, rec) in trace.records.iter().enumerate() {
        let target = if faithful {
            base + Duration::from_nanos(rec.submit_ns - t0)
        } else {
            cursor
        };
        if faithful {
            queue.poll_upto(target, &mut retired);
            for &(token, completion) in &retired {
                book(&mut inflight, &mut rts, token, completion);
                last_completion = last_completion.max(completion);
            }
            retired.clear();
        }
        let io = rec.io_request(i as u64);
        let mut at = target.max(cursor);
        loop {
            match policy::submit_with_policy(queue, &io, at, io_policy, &mut rng, sink, enabled) {
                Ok(SubmitOutcome::Submitted(token)) => {
                    inflight.insert(token, (i, target));
                    cursor = at;
                    break;
                }
                Ok(SubmitOutcome::Full) => {
                    let (token, completion) = queue
                        .poll()
                        .ok_or(DeviceError::Internal("full queue with nothing to poll"))?;
                    book(&mut inflight, &mut rts, token, completion);
                    last_completion = last_completion.max(completion);
                    at = at.max(completion);
                }
                Ok(SubmitOutcome::Degraded(waited)) => {
                    // The IO never reached the device; its response
                    // time is the backoff spent on it.
                    rts[i] = waited;
                    cursor = at;
                    last_completion = last_completion.max(at + waited);
                    break;
                }
                Err(e) => bail!(queue, e),
            }
        }
    }
    while let Some((token, completion)) = queue.poll() {
        book(&mut inflight, &mut rts, token, completion);
        last_completion = last_completion.max(completion);
    }
    if io_policy.timeout.is_some() {
        for &rt in &rts {
            policy::observe_timeout(io_policy, rt, sink, enabled);
        }
    }
    if queue.queue_depth() != device_depth {
        queue.set_queue_depth(device_depth)?;
    }
    Ok(RunResult::new(label, rts, 0, last_completion - base))
}

/// The policy-aware serial fallback, both modes.
fn replay_serial_with_policy(
    dev: &mut dyn BlockDevice,
    trace: &Trace,
    label: String,
    mode: ReplayMode,
    io_policy: &IoPolicy,
    sink: &uflip_obs::SinkHandle,
    enabled: bool,
) -> Result<RunResult> {
    let mut rng = io_policy.jitter_seed;
    let base = dev.now();
    let t0 = trace.records[0].submit_ns;
    let faithful = mode == ReplayMode::TimingFaithful;
    let mut rts = Vec::with_capacity(trace.len());
    for (i, rec) in trace.records.iter().enumerate() {
        let io = rec.io_request(i as u64);
        if faithful {
            let target = base + Duration::from_nanos(rec.submit_ns - t0);
            let now = dev.now();
            if now < target {
                dev.idle(target - now);
            }
            policy::issue_with_policy(dev, &io, io_policy, &mut rng, sink, enabled)?;
            rts.push(dev.now() - target);
        } else {
            rts.push(policy::issue_with_policy(
                dev, &io, io_policy, &mut rng, sink, enabled,
            )?);
        }
    }
    Ok(RunResult::new(label, rts, 0, dev.now() - base))
}

/// Queued replay: one event loop serves both modes. In faithful mode
/// each IO targets its recorded offset from the start of the replay;
/// in open-loop mode it targets the earliest instant admission
/// permits. Submissions stay non-decreasing in virtual time — the
/// queue contract — because record order, completion times and the
/// running cursor are all monotone.
///
/// Open-loop replay is the engine's fast path: every record in a wave
/// shares the same submission instant (the cursor), so waves go down
/// through [`IoQueue::submit_batch`] — one virtual dispatch per wave —
/// and completions come back through [`IoQueue::poll_upto`] and the
/// final drain. Per-IO state lives in a [`TokenSlab`] (O(1) retire;
/// the linear in-flight scan it replaced made deep queues quadratic).
fn replay_queued(
    dev: &mut dyn BlockDevice,
    trace: &Trace,
    label: String,
    depth: u32,
    faithful: bool,
) -> Result<RunResult> {
    let base = dev.now();
    let queue = dev
        .io_queue()
        .ok_or(DeviceError::Internal("device lost its queue mid-replay"))?;
    let device_depth = queue.queue_depth();
    queue.set_queue_depth(depth)?;
    let t0 = trace.records[0].submit_ns;
    let n = trace.records.len();
    let mut rts = vec![Duration::ZERO; n];
    // (record index, intended submission time) per in-flight IO.
    let mut inflight: TokenSlab<(usize, Duration)> = TokenSlab::new();
    let mut retired: Vec<(Token, Duration)> = Vec::with_capacity(depth as usize + 1);
    let mut last_completion = base;
    // Earliest time the next submission may carry (keeps `at`
    // monotone once back-pressure pushes past the recorded schedule).
    let mut cursor = base;
    // Leave the device usable on error: drain what is in flight and
    // restore its own depth before reporting the bad record (e.g. a
    // trace captured on a larger device replayed past this one's
    // capacity).
    macro_rules! bail {
        ($queue:ident, $e:expr) => {{
            while $queue.poll().is_some() {}
            if $queue.queue_depth() != device_depth {
                // uflip-lint: allow(UF030, reason = "error path: the primary error outranks a failed depth restore")
                let _ = $queue.set_queue_depth(device_depth);
            }
            return Err($e);
        }};
    }
    if faithful {
        for (i, rec) in trace.records.iter().enumerate() {
            let target = base + Duration::from_nanos(rec.submit_ns - t0);
            // Retire completions that precede this submission; they
            // also keep idle-gap accounting exact.
            queue.poll_upto(target, &mut retired);
            for &(token, completion) in &retired {
                book(&mut inflight, &mut rts, token, completion);
                last_completion = last_completion.max(completion);
            }
            retired.clear();
            let io = rec.io_request(i as u64);
            let mut at = target.max(cursor);
            loop {
                match queue.submit(&io, at) {
                    Ok(token) => {
                        inflight.insert(token, (i, target));
                        cursor = at;
                        break;
                    }
                    Err(DeviceError::QueueFull { .. }) => {
                        let (token, completion) = queue
                            .poll()
                            .ok_or(DeviceError::Internal("full queue with nothing to poll"))?;
                        book(&mut inflight, &mut rts, token, completion);
                        last_completion = last_completion.max(completion);
                        at = at.max(completion);
                    }
                    Err(e) => bail!(queue, e),
                }
            }
        }
    } else {
        // Open loop: waves of records submitted back-to-back at the
        // cursor. Deferring retires to the back-pressure point changes
        // nothing observable — retiring has no device side effects, a
        // submission at the cursor never opens an idle gap (scheduled
        // completions always run past it), and response times index a
        // slab, not an ordering.
        const WAVE: usize = 64;
        let mut ios: Vec<IoRequest> = Vec::with_capacity(WAVE.min(n));
        let mut tokens: Vec<Token> = Vec::with_capacity(WAVE.min(n));
        let mut i = 0usize;
        while i < n {
            let end = (i + WAVE).min(n);
            ios.clear();
            for (k, rec) in trace.records[i..end].iter().enumerate() {
                ios.push(rec.io_request((i + k) as u64));
            }
            let mut off = 0usize;
            // A record's *intended* submission is the cursor when its
            // turn begins — before any back-pressure poll taken on its
            // behalf bumps the cursor. Only the first record of a
            // post-poll batch can differ (its turn began earlier).
            let mut turn_start = cursor;
            while off < ios.len() {
                tokens.clear();
                let accepted = match queue.submit_batch(&ios[off..], cursor, &mut tokens) {
                    Ok(a) => a,
                    Err(e) => bail!(queue, e),
                };
                for (k, &token) in tokens.iter().enumerate() {
                    let intended = if k == 0 { turn_start } else { cursor };
                    inflight.insert(token, (i + off + k, intended));
                }
                off += accepted;
                if accepted > 0 {
                    turn_start = cursor;
                }
                if off < ios.len() {
                    // Back-pressure: retire one completion; the cursor
                    // may not precede it.
                    let (token, completion) = queue
                        .poll()
                        .ok_or(DeviceError::Internal("full queue with nothing to poll"))?;
                    book(&mut inflight, &mut rts, token, completion);
                    last_completion = last_completion.max(completion);
                    cursor = cursor.max(completion);
                }
            }
            i = end;
        }
    }
    while let Some((token, completion)) = queue.poll() {
        book(&mut inflight, &mut rts, token, completion);
        last_completion = last_completion.max(completion);
    }
    if queue.queue_depth() != device_depth {
        queue.set_queue_depth(device_depth)?;
    }
    Ok(RunResult::new(label, rts, 0, last_completion - base))
}

/// Book a queued completion: response time = completion − intended
/// submission.
fn book(
    inflight: &mut TokenSlab<(usize, Duration)>,
    rts: &mut [Duration],
    token: Token,
    completion: Duration,
) {
    let (seq, intended) = inflight.remove(token);
    rts[seq] = completion - intended;
}

/// Faithful replay on a synchronous backend: idle out the recorded
/// gaps, issue one IO at a time.
fn replay_faithful_serial(
    dev: &mut dyn BlockDevice,
    trace: &Trace,
    label: String,
) -> Result<RunResult> {
    let base = dev.now();
    let t0 = trace.records[0].submit_ns;
    let mut rts = Vec::with_capacity(trace.len());
    for (i, rec) in trace.records.iter().enumerate() {
        let target = base + Duration::from_nanos(rec.submit_ns - t0);
        let now = dev.now();
        if now < target {
            dev.idle(target - now);
        }
        let io = rec.io_request(i as u64);
        issue(dev, io.mode, io.offset, io.size)?;
        // Completion − intended submission: includes time the device
        // spent behind schedule, as a host thread would measure.
        let completion = dev.now();
        rts.push(completion - target);
    }
    Ok(RunResult::new(label, rts, 0, dev.now() - base))
}

/// Open-loop replay on a synchronous backend: back-to-back issue.
fn replay_open_serial(
    dev: &mut dyn BlockDevice,
    trace: &Trace,
    label: String,
) -> Result<RunResult> {
    let base = dev.now();
    let mut rts = Vec::with_capacity(trace.len());
    for (i, rec) in trace.records.iter().enumerate() {
        let io = rec.io_request(i as u64);
        rts.push(issue(dev, io.mode, io.offset, io.size)?);
    }
    Ok(RunResult::new(label, rts, 0, dev.now() - base))
}

fn issue(dev: &mut dyn BlockDevice, mode: Mode, offset: u64, size: u64) -> Result<Duration> {
    match mode {
        Mode::Read => dev.read(offset, size),
        Mode::Write => dev.write(offset, size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uflip_trace::TraceRecord;

    const MB: u64 = 1024 * 1024;

    fn rec(op: Mode, lba: u64, submit: u64) -> TraceRecord {
        TraceRecord {
            op,
            lba,
            sectors: 4, // 2 KB
            submit_ns: submit,
            complete_ns: submit,
            queue_depth: 1,
        }
    }

    fn mem() -> uflip_device::MemDevice {
        uflip_device::MemDevice::new(64 * MB, Duration::from_micros(100), 0)
    }

    #[test]
    fn empty_trace_is_a_no_op() {
        let mut d = mem();
        let t = Trace::new("mem", "empty");
        for mode in [
            ReplayMode::TimingFaithful,
            ReplayMode::OpenLoop { queue_depth: 4 },
        ] {
            let run = replay_trace(&mut d, &t, mode).unwrap();
            assert!(run.is_empty());
            assert_eq!(run.elapsed, Duration::ZERO);
        }
    }

    #[test]
    fn faithful_serial_honors_gaps() {
        let mut d = mem();
        let mut t = Trace::new("mem", "gaps");
        // Three IOs, 1 ms apart — far wider than the 100 µs service.
        for i in 0..3u64 {
            t.push(rec(Mode::Read, i * 8, i * 1_000_000));
        }
        let run = replay_trace(&mut d, &t, ReplayMode::TimingFaithful).unwrap();
        assert_eq!(run.len(), 3);
        // Elapsed = last gap + last service.
        assert_eq!(run.elapsed, Duration::from_micros(2_000 + 100));
        assert!(run.rts.iter().all(|&rt| rt == Duration::from_micros(100)));
    }

    #[test]
    fn faithful_serial_charges_backlog_to_response_time() {
        let mut d = mem();
        let mut t = Trace::new("mem", "burst");
        // Two IOs submitted simultaneously on a 100 µs serial device:
        // the second waits behind the first.
        t.push(rec(Mode::Read, 0, 0));
        t.push(rec(Mode::Read, 8, 0));
        let run = replay_trace(&mut d, &t, ReplayMode::TimingFaithful).unwrap();
        assert_eq!(run.rts[0], Duration::from_micros(100));
        assert_eq!(
            run.rts[1],
            Duration::from_micros(200),
            "queued behind the first"
        );
        assert_eq!(run.elapsed, Duration::from_micros(200));
    }

    #[test]
    fn open_loop_serial_ignores_gaps() {
        let mut d = mem();
        let mut t = Trace::new("mem", "gaps");
        for i in 0..4u64 {
            t.push(rec(Mode::Write, i * 8, i * 10_000_000));
        }
        let run = replay_trace(&mut d, &t, ReplayMode::OpenLoop { queue_depth: 1 }).unwrap();
        assert_eq!(
            run.elapsed,
            Duration::from_micros(400),
            "gaps are not replayed"
        );
    }

    #[test]
    fn unordered_traces_are_rejected() {
        let mut d = mem();
        let mut t = Trace::new("mem", "bad");
        t.push(rec(Mode::Read, 0, 500));
        t.push(rec(Mode::Read, 8, 0));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = replay_trace(&mut d, &t, ReplayMode::TimingFaithful);
        }));
        assert!(r.is_err(), "out-of-order records must be rejected loudly");
    }

    #[test]
    fn mode_codes_label_runs() {
        assert_eq!(ReplayMode::TimingFaithful.code(), "faithful");
        assert_eq!(ReplayMode::OpenLoop { queue_depth: 16 }.code(), "open-qd16");
        let mut d = mem();
        let mut t = Trace::new("mem", "RR");
        t.push(rec(Mode::Read, 0, 0));
        let run = replay_trace(&mut d, &t, ReplayMode::OpenLoop { queue_depth: 2 }).unwrap();
        assert_eq!(run.label, "replay(RR,open-qd2)");
    }
}
