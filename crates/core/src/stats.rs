//! Run statistics: the paper's per-run summary (min, max, mean,
//! standard deviation) plus percentiles for richer analysis.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Summary statistics over the response times of one run.
///
/// §3.2, design principle 1: "For each run, we measure and record the
/// response time for individual IOs and compute statistics (min, max,
/// mean, standard deviation) to summarize it."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// IOs summarized (after the IOIgnore prefix).
    pub count: u64,
    /// Minimum response time.
    pub min: Duration,
    /// Maximum response time.
    pub max: Duration,
    /// Arithmetic mean response time.
    pub mean: Duration,
    /// Population standard deviation.
    pub stddev: Duration,
    /// Median (p50).
    pub median: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Sum of all response times (total device busy time).
    pub total: Duration,
}

impl RunStats {
    /// Compute statistics over a slice of response times. Returns `None`
    /// for an empty slice.
    pub fn from_rts(rts: &[Duration]) -> Option<RunStats> {
        if rts.is_empty() {
            return None;
        }
        let n = rts.len() as u64;
        let mut sorted: Vec<u64> = rts.iter().map(|d| d.as_nanos() as u64).collect();
        sorted.sort_unstable();
        let total: u128 = sorted.iter().map(|&x| x as u128).sum();
        let mean = (total / n as u128) as u64;
        let var: u128 = sorted
            .iter()
            .map(|&x| {
                let d = x as i128 - mean as i128;
                (d * d) as u128
            })
            .sum::<u128>()
            / n as u128;
        let stddev = (var as f64).sqrt() as u64;
        let pct = |p: f64| -> u64 {
            let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
            sorted[idx]
        };
        Some(RunStats {
            count: n,
            min: Duration::from_nanos(sorted[0]),
            max: Duration::from_nanos(*sorted.last().expect("non-empty")),
            mean: Duration::from_nanos(mean),
            stddev: Duration::from_nanos(stddev),
            median: Duration::from_nanos(pct(0.5)),
            p95: Duration::from_nanos(pct(0.95)),
            p99: Duration::from_nanos(pct(0.99)),
            total: Duration::from_nanos(total as u64),
        })
    }

    /// Mean in milliseconds (the paper's reporting unit).
    pub fn mean_ms(&self) -> f64 {
        self.mean.as_secs_f64() * 1e3
    }

    /// Max ÷ min ratio — a quick oscillation indicator.
    pub fn spread(&self) -> f64 {
        if self.min.is_zero() {
            return f64::INFINITY;
        }
        self.max.as_secs_f64() / self.min.as_secs_f64()
    }

    /// Coefficient of variation (stddev ÷ mean).
    pub fn cv(&self) -> f64 {
        if self.mean.is_zero() {
            return 0.0;
        }
        self.stddev.as_secs_f64() / self.mean.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_slice_has_no_stats() {
        assert!(RunStats::from_rts(&[]).is_none());
    }

    #[test]
    fn single_value() {
        let s = RunStats::from_rts(&[ms(5)]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, ms(5));
        assert_eq!(s.max, ms(5));
        assert_eq!(s.mean, ms(5));
        assert_eq!(s.stddev, Duration::ZERO);
        assert_eq!(s.median, ms(5));
    }

    #[test]
    fn known_distribution() {
        let rts = vec![ms(1), ms(2), ms(3), ms(4)];
        let s = RunStats::from_rts(&rts).unwrap();
        assert_eq!(s.mean, Duration::from_micros(2500));
        assert_eq!(s.min, ms(1));
        assert_eq!(s.max, ms(4));
        assert_eq!(s.total, ms(10));
        // population stddev of 1..4 = sqrt(1.25) ms ≈ 1.118 ms
        let sd = s.stddev.as_secs_f64();
        assert!((sd - 0.001_118).abs() < 1e-5, "stddev {sd}");
    }

    #[test]
    fn percentiles_on_ordered_data() {
        let rts: Vec<Duration> = (1..=100).map(ms).collect();
        let s = RunStats::from_rts(&rts).unwrap();
        // indices: median → round(99×0.5)=50 → value 51;
        // p95 → round(99×0.95)=94 → value 95; p99 → round(99×0.99)=98 → 99.
        assert_eq!(s.median, ms(51));
        assert_eq!(s.p95, ms(95));
        assert_eq!(s.p99, ms(99));
    }

    #[test]
    fn order_does_not_matter() {
        let a = RunStats::from_rts(&[ms(3), ms(1), ms(2)]).unwrap();
        let b = RunStats::from_rts(&[ms(1), ms(2), ms(3)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn spread_and_cv() {
        let s = RunStats::from_rts(&[ms(1), ms(10)]).unwrap();
        assert!((s.spread() - 10.0).abs() < 1e-9);
        assert!(s.cv() > 0.0);
    }
}
