//! Run statistics: the paper's per-run summary (min, max, mean,
//! standard deviation) plus percentiles for richer analysis.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Summary statistics over the response times of one run.
///
/// §3.2, design principle 1: "For each run, we measure and record the
/// response time for individual IOs and compute statistics (min, max,
/// mean, standard deviation) to summarize it."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// IOs summarized (after the IOIgnore prefix).
    pub count: u64,
    /// Minimum response time.
    pub min: Duration,
    /// Maximum response time.
    pub max: Duration,
    /// Arithmetic mean response time.
    pub mean: Duration,
    /// Population standard deviation.
    pub stddev: Duration,
    /// Median (p50).
    pub median: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Sum of all response times (total device busy time).
    pub total: Duration,
}

impl RunStats {
    /// Compute statistics over a slice of response times. Returns `None`
    /// for an empty slice.
    pub fn from_rts(rts: &[Duration]) -> Option<RunStats> {
        if rts.is_empty() {
            return None;
        }
        let n = rts.len() as u64;
        let mut sorted: Vec<u64> = rts.iter().map(|d| d.as_nanos() as u64).collect();
        sorted.sort_unstable();
        let total: u128 = sorted.iter().map(|&x| x as u128).sum();
        // Round half up instead of truncating: a truncated mean is
        // biased low by up to one nanosecond on every run, which
        // accumulates when runs are compared or aggregated.
        let mean = ((total + n as u128 / 2) / n as u128) as u64;
        let var: u128 = sorted
            .iter()
            .map(|&x| {
                let d = x as i128 - mean as i128;
                (d * d) as u128
            })
            .sum::<u128>()
            / n as u128;
        let stddev = (var as f64).sqrt().round() as u64;
        // Linear-interpolated percentiles (the "type 7" estimator):
        // nearest-rank `round` picked an arbitrary neighbor for the
        // median of an even-count run and biased p95/p99 on small runs.
        let pct = |p: f64| -> u64 {
            let rank = (sorted.len() - 1) as f64 * p;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            if lo == hi {
                sorted[lo]
            } else {
                let frac = rank - lo as f64;
                let (a, b) = (sorted[lo] as f64, sorted[hi] as f64);
                (a + (b - a) * frac).round() as u64
            }
        };
        Some(RunStats {
            count: n,
            min: Duration::from_nanos(sorted[0]),
            max: Duration::from_nanos(sorted.last().copied().unwrap_or(0)),
            mean: Duration::from_nanos(mean),
            stddev: Duration::from_nanos(stddev),
            median: Duration::from_nanos(pct(0.5)),
            p95: Duration::from_nanos(pct(0.95)),
            p99: Duration::from_nanos(pct(0.99)),
            total: Duration::from_nanos(total as u64),
        })
    }

    /// Mean in milliseconds (the paper's reporting unit).
    pub fn mean_ms(&self) -> f64 {
        self.mean.as_secs_f64() * 1e3
    }

    /// Max ÷ min ratio — a quick oscillation indicator.
    pub fn spread(&self) -> f64 {
        if self.min.is_zero() {
            return f64::INFINITY;
        }
        self.max.as_secs_f64() / self.min.as_secs_f64()
    }

    /// Coefficient of variation (stddev ÷ mean).
    pub fn cv(&self) -> f64 {
        if self.mean.is_zero() {
            return 0.0;
        }
        self.stddev.as_secs_f64() / self.mean.as_secs_f64()
    }
}

/// Streaming (constant-memory) [`RunStats`] builder for runs too large
/// to keep a response-time vector around — million-IO trace replays,
/// long soak runs.
///
/// Count, min, max, mean, total and standard deviation are **exact**:
/// they stream through integer accumulators (the stddev uses the
/// sum-of-squares identity around the same rounded integer mean
/// [`RunStats::from_rts`] uses, so it reproduces the exact path
/// bit-for-bit). Median/p95/p99 come from a log-bucketed
/// [`uflip_obs::LatencyHistogram`] and are **approximate**: each
/// quantile lands within one sub-bucket width (≲ 1/16 ≈ 6.25%
/// relative) of the exact order statistic. The exact
/// [`RunStats::from_rts`] stays the default everywhere a full `rts`
/// vector already exists.
#[derive(Debug, Default)]
pub struct StreamingStats {
    count: u64,
    min_ns: u64,
    max_ns: u64,
    sum_ns: u128,
    sum_sq: u128,
    hist: uflip_obs::LatencyHistogram,
}

impl StreamingStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            sum_ns: 0,
            sum_sq: 0,
            hist: uflip_obs::LatencyHistogram::new(),
        }
    }

    /// Record one response time.
    pub fn record(&mut self, rt: Duration) {
        self.record_ns(rt.as_nanos() as u64);
    }

    /// Record one response time in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.count += 1;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.sum_ns += ns as u128;
        self.sum_sq += (ns as u128) * (ns as u128);
        self.hist.record(ns);
    }

    /// Response times recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The underlying latency histogram (e.g. to merge into a
    /// `uflip_obs::Metrics` snapshot or render a distribution plot).
    pub fn histogram(&self) -> &uflip_obs::LatencyHistogram {
        &self.hist
    }

    /// Finish into a [`RunStats`]. Returns `None` when nothing was
    /// recorded, mirroring [`RunStats::from_rts`] on an empty slice.
    pub fn finish(&self) -> Option<RunStats> {
        if self.count == 0 {
            return None;
        }
        let n = self.count as u128;
        let mean = ((self.sum_ns + n / 2) / n) as u64;
        // Σ(x − mean)² = Σx² − 2·mean·Σx + n·mean², exact in integers
        // around the same rounded mean the batch path subtracts.
        let var = (self.sum_sq as i128 - 2 * mean as i128 * self.sum_ns as i128
            + n as i128 * (mean as i128) * (mean as i128))
            / n as i128;
        let stddev = (var.max(0) as f64).sqrt().round() as u64;
        Some(RunStats {
            count: self.count,
            min: Duration::from_nanos(self.min_ns),
            max: Duration::from_nanos(self.max_ns),
            mean: Duration::from_nanos(mean),
            stddev: Duration::from_nanos(stddev),
            median: Duration::from_nanos(self.hist.quantile(0.5)),
            p95: Duration::from_nanos(self.hist.quantile(0.95)),
            p99: Duration::from_nanos(self.hist.quantile(0.99)),
            total: Duration::from_nanos(self.sum_ns as u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_slice_has_no_stats() {
        assert!(RunStats::from_rts(&[]).is_none());
    }

    #[test]
    fn single_value() {
        let s = RunStats::from_rts(&[ms(5)]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, ms(5));
        assert_eq!(s.max, ms(5));
        assert_eq!(s.mean, ms(5));
        assert_eq!(s.stddev, Duration::ZERO);
        assert_eq!(s.median, ms(5));
    }

    #[test]
    fn known_distribution() {
        let rts = vec![ms(1), ms(2), ms(3), ms(4)];
        let s = RunStats::from_rts(&rts).unwrap();
        assert_eq!(s.mean, Duration::from_micros(2500));
        assert_eq!(s.min, ms(1));
        assert_eq!(s.max, ms(4));
        assert_eq!(s.total, ms(10));
        // population stddev of 1..4 = sqrt(1.25) ms ≈ 1.118 ms
        let sd = s.stddev.as_secs_f64();
        assert!((sd - 0.001_118).abs() < 1e-5, "stddev {sd}");
    }

    #[test]
    fn even_count_median_interpolates_between_neighbors() {
        // The old nearest-rank `round` picked an arbitrary neighbor
        // (here: 3 ms); the conventional even-count median is halfway.
        let s = RunStats::from_rts(&[ms(1), ms(2), ms(3), ms(4)]).unwrap();
        assert_eq!(s.median, Duration::from_micros(2500));
        let s = RunStats::from_rts(&[ms(10), ms(20)]).unwrap();
        assert_eq!(s.median, ms(15));
    }

    #[test]
    fn percentiles_on_ordered_data() {
        let rts: Vec<Duration> = (1..=100).map(ms).collect();
        let s = RunStats::from_rts(&rts).unwrap();
        // Linear interpolation on ranks 0..=99:
        // median → rank 49.5 → (50 + 51)/2 = 50.5 ms;
        // p95 → rank 94.05 → 95 + 0.05 = 95.05 ms;
        // p99 → rank 98.01 → 99 + 0.01 = 99.01 ms.
        assert_eq!(s.median, Duration::from_micros(50_500));
        assert_eq!(s.p95, Duration::from_micros(95_050));
        assert_eq!(s.p99, Duration::from_micros(99_010));
    }

    #[test]
    fn small_run_percentiles_are_not_biased_to_the_max() {
        // On a 5-point run the old nearest-rank round mapped p95 and
        // p99 onto the maximum; interpolation keeps them below it.
        let rts = vec![ms(1), ms(2), ms(3), ms(4), ms(100)];
        let s = RunStats::from_rts(&rts).unwrap();
        assert_eq!(s.median, ms(3));
        // p95 → rank 3.8 → 4 + 0.8 × 96 = 80.8 ms.
        assert_eq!(s.p95, Duration::from_micros(80_800));
        assert!(s.p95 < s.max && s.p99 < s.max);
        // p99 → rank 3.96 → 4 + 0.96 × 96 = 96.16 ms.
        assert_eq!(s.p99, Duration::from_micros(96_160));
    }

    #[test]
    fn mean_rounds_half_up_instead_of_truncating() {
        let rts = vec![Duration::from_nanos(1), Duration::from_nanos(2)];
        let s = RunStats::from_rts(&rts).unwrap();
        assert_eq!(s.mean, Duration::from_nanos(2), "1.5 ns rounds up");
        let rts = vec![Duration::from_nanos(1); 3];
        let s = RunStats::from_rts(&rts).unwrap();
        assert_eq!(s.mean, Duration::from_nanos(1), "exact mean unchanged");
    }

    #[test]
    fn order_does_not_matter() {
        let a = RunStats::from_rts(&[ms(3), ms(1), ms(2)]).unwrap();
        let b = RunStats::from_rts(&[ms(1), ms(2), ms(3)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn spread_and_cv() {
        let s = RunStats::from_rts(&[ms(1), ms(10)]).unwrap();
        assert!((s.spread() - 10.0).abs() < 1e-9);
        assert!(s.cv() > 0.0);
    }

    #[test]
    fn streaming_empty_has_no_stats() {
        assert!(StreamingStats::new().finish().is_none());
        assert_eq!(StreamingStats::default().count(), 0);
    }

    #[test]
    fn streaming_exact_fields_match_batch_path() {
        let rts: Vec<Duration> = (1..=100)
            .map(|i| Duration::from_nanos(i * 997 + 13))
            .collect();
        let exact = RunStats::from_rts(&rts).unwrap();
        let mut s = StreamingStats::new();
        for rt in &rts {
            s.record(*rt);
        }
        let stream = s.finish().unwrap();
        assert_eq!(stream.count, exact.count);
        assert_eq!(stream.min, exact.min);
        assert_eq!(stream.max, exact.max);
        assert_eq!(stream.mean, exact.mean);
        assert_eq!(stream.stddev, exact.stddev, "sum-of-squares identity");
        assert_eq!(stream.total, exact.total);
    }

    #[test]
    fn streaming_percentiles_land_within_one_bucket() {
        let rts: Vec<Duration> = (1..=1000).map(|i| Duration::from_nanos(i * 731)).collect();
        let exact = RunStats::from_rts(&rts).unwrap();
        let mut s = StreamingStats::new();
        for rt in &rts {
            s.record(*rt);
        }
        let stream = s.finish().unwrap();
        for (approx, truth) in [
            (stream.median, exact.median),
            (stream.p95, exact.p95),
            (stream.p99, exact.p99),
        ] {
            let width = uflip_obs::bucket_width_at(truth.as_nanos() as u64).max(1);
            let diff = approx.as_nanos().abs_diff(truth.as_nanos());
            assert!(
                diff <= width as u128,
                "approx {approx:?} vs exact {truth:?} (bucket width {width})"
            );
        }
        assert_eq!(s.histogram().count(), 1000);
    }
}
