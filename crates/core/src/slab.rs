//! Dense, token-indexed slab for in-flight IO bookkeeping.
//!
//! [`Token`]s issued by one queue count up from 0 in submission order
//! (see [`Token::raw`]), so `raw − base` — where `base` is the first
//! token a run observed — is a dense slab index. Insert and remove are
//! O(1) with no hashing; the slab grows to the deepest concurrent
//! window and is then reused for the rest of the run. The executors and
//! the replay engine keep their per-IO state (process, intended
//! submission, sequence index) here; the old linear `Vec::position`
//! scan made every retire O(in-flight), turning deep-queue replays
//! quadratic.

use uflip_device::Token;

/// Slab keyed by [`Token`], holding one `T` per in-flight IO.
#[derive(Debug)]
pub struct TokenSlab<T> {
    /// Raw value of the run's first token (tokens are device-global,
    /// so a run rarely starts at 0).
    base: Option<u64>,
    /// One slot per token issued since `base`; `None` once retired.
    slots: Vec<Option<T>>,
}

impl<T> Default for TokenSlab<T> {
    fn default() -> Self {
        TokenSlab {
            base: None,
            slots: Vec::new(),
        }
    }
}

impl<T> TokenSlab<T> {
    /// Empty slab; the first `insert` fixes the token base.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn index(&self, token: Token) -> usize {
        // uflip-lint: allow(UF002, UF031, reason = "token-protocol invariant on the O(1) hot path: insert fixes the base before any lookup")
        let base = self.base.expect("insert fixes the base first");
        // uflip-lint: allow(UF002, UF031, reason = "token offsets are bounded by queue depth; a failure here is a corrupted token, best caught loudly")
        usize::try_from(token.raw() - base).expect("token offsets fit a slab index")
    }

    /// Record `value` for an in-flight `token`.
    #[inline]
    pub fn insert(&mut self, token: Token, value: T) {
        if self.base.is_none() {
            self.base = Some(token.raw());
        }
        let idx = self.index(token);
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        debug_assert!(self.slots[idx].is_none(), "token reused while in flight");
        self.slots[idx] = Some(value);
    }

    /// Take the value recorded for a completed `token`.
    #[inline]
    pub fn remove(&mut self, token: Token) -> T {
        let idx = self.index(token);
        self.slots[idx]
            .take()
            // uflip-lint: allow(UF002, UF031, reason = "queues complete only submitted tokens; silently skipping an unknown token would hide executor bugs")
            .expect("completed token was submitted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip_with_nonzero_base() {
        let mut s: TokenSlab<u32> = TokenSlab::new();
        s.insert(Token::from_raw(100), 1);
        s.insert(Token::from_raw(101), 2);
        s.insert(Token::from_raw(102), 3);
        assert_eq!(s.remove(Token::from_raw(101)), 2);
        assert_eq!(s.remove(Token::from_raw(100)), 1);
        s.insert(Token::from_raw(103), 4);
        assert_eq!(s.remove(Token::from_raw(103)), 4);
        assert_eq!(s.remove(Token::from_raw(102)), 3);
    }

    #[test]
    #[should_panic(expected = "completed token was submitted")]
    fn double_remove_panics() {
        let mut s: TokenSlab<u32> = TokenSlab::new();
        s.insert(Token::from_raw(0), 1);
        s.remove(Token::from_raw(0));
        s.remove(Token::from_raw(0));
    }
}
